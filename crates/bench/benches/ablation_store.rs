//! **Ablation: vector-store backends** (paper §2.2).
//!
//! "We saw only a minor drop in accuracy metrics in our benchmarks
//! using Annoy vs an exact but slow scan." Four measurements, all
//! selected through `StoreConfig` rather than hardcoded types:
//!
//! 1. recall@10 and per-lookup latency of every backend (exact scan,
//!    RP forest, IVF — the dense backends at both `f32` and `f16` row
//!    storage) against the exact scan;
//! 2. wall-clock speedup of sharded exact search over the unsharded
//!    scan at 1/2/4/8 shards (the parallelism layer's headline number —
//!    expect ≈ linear scaling up to the machine's core count);
//! 3. end-to-end SeeSaw mAP per backend at the default budget;
//! 4. end-to-end SeeSaw mAP as a function of the candidate budget
//!    (`search_k`) on the default backend.

use std::time::Instant;

use seesaw_bench::{ap_per_query, bench_seed, bench_store_config, mean_ap};
use seesaw_core::{MethodConfig, PreprocessConfig, Preprocessor};
use seesaw_dataset::DatasetSpec;
use seesaw_metrics::{BenchmarkProtocol, TableBuilder};
use seesaw_vecstore::{IvfConfig, RowPrecision, RpForestConfig, StoreConfig, VectorStore};

fn main() {
    let scale = 0.01 * seesaw_bench::env_f64("SEESAW_SCALE", 1.0);
    let ds = DatasetSpec::lvis_like(scale)
        .with_max_queries(20)
        .generate(bench_seed());
    let idx = Preprocessor::new(PreprocessConfig::fast()).build(&ds);
    let data = idx.embeddings.as_slice().to_vec();
    let proto = BenchmarkProtocol::default();
    eprintln!("[ablation_store] {} patch vectors", idx.n_patches());

    let queries: Vec<Vec<f32>> = ds
        .queries()
        .iter()
        .map(|q| ds.model.embed_text(q.concept))
        .collect();

    // --- recall + latency per backend -------------------------------
    // The dense-row backends (exact, IVF) additionally sweep the row
    // storage precision: f16 halves scan bandwidth and costs at most a
    // one-time rounding of each stored row.
    let backends = [
        ("exact", StoreConfig::exact()),
        (
            "exact-f16",
            StoreConfig::exact().with_precision(RowPrecision::F16),
        ),
        ("forest", StoreConfig::forest(RpForestConfig::default())),
        ("ivf", StoreConfig::ivf(IvfConfig::default())),
        (
            "ivf-f16",
            StoreConfig::ivf(IvfConfig::default()).with_precision(RowPrecision::F16),
        ),
    ];
    let exact = StoreConfig::exact().build(idx.dim, data.clone());
    let mut recall_table = TableBuilder::new(
        "Backend recall@10 and lookup latency (default knobs, f32 and f16 row storage)",
    )
    .header(["backend", "recall@10", "lookup µs"]);
    for (label, cfg) in &backends {
        let store = cfg.clone().build(idx.dim, data.clone());
        let mut hit = 0usize;
        let mut total = 0usize;
        let mut lookup = std::time::Duration::ZERO;
        for q in &queries {
            let truth = exact.top_k(q, 10);
            let t0 = Instant::now();
            let approx = store.top_k(q, 10);
            lookup += t0.elapsed();
            total += truth.len();
            hit += truth
                .iter()
                .filter(|t| approx.iter().any(|h| h.id == t.id))
                .count();
        }
        recall_table.row([
            label.to_string(),
            format!("{:.3}", hit as f64 / total.max(1) as f64),
            format!("{:.0}", lookup.as_secs_f64() * 1e6 / queries.len() as f64),
        ]);
    }
    println!("{recall_table}");

    // --- sharded exact scan: wall-clock vs shard count ---------------
    let mut shard_table =
        TableBuilder::new("Sharded exact scan wall-clock (bit-identical results)").header([
            "shards",
            "lookup µs",
            "speedup",
        ]);
    let mut base_us = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let store = StoreConfig::exact()
            .with_shards(shards)
            .build(idx.dim, data.clone());
        // Warm-up pass, then timed passes over all queries.
        for q in &queries {
            let _ = store.top_k(q, 10);
        }
        let t0 = Instant::now();
        for _ in 0..3 {
            for q in &queries {
                let _ = store.top_k(q, 10);
            }
        }
        let us = t0.elapsed().as_micros() as f64 / (3 * queries.len()) as f64;
        if shards == 1 {
            base_us = us;
        }
        shard_table.row([
            shards.to_string(),
            format!("{us:.0}"),
            format!("{:.2}x", base_us / us.max(1.0)),
        ]);
    }
    println!("{shard_table}");

    // --- end-to-end mAP per backend ----------------------------------
    let mut backend_ap = TableBuilder::new("SeeSaw mAP per store backend (default budget)")
        .header(["backend", "mAP"]);
    for (label, cfg) in &backends {
        // Swap only the store: embeddings, graphs, and M_D are shared.
        // (`build` hands back Arc<DatasetIndex>; clone the inner value
        // to get a mutable copy, then re-share it.)
        let mut idx_b = (*idx).clone();
        idx_b.store = cfg
            .clone()
            .reseeded(PreprocessConfig::fast().seed)
            .build(idx.dim, data.clone());
        let idx_b = std::sync::Arc::new(idx_b);
        let aps = ap_per_query(&idx_b, &ds, &|_, _, _| MethodConfig::seesaw(), &proto);
        backend_ap.num_row(*label, &[mean_ap(&aps)], 3);
    }
    println!("{backend_ap}");

    // --- end-to-end mAP vs candidate budget --------------------------
    let sweep_cfg = bench_store_config();
    let mut idx_s = (*idx).clone();
    idx_s.store = sweep_cfg
        .clone()
        .reseeded(PreprocessConfig::fast().seed)
        .build(idx.dim, data.clone());
    let idx_s = std::sync::Arc::new(idx_s);
    let mut ap_table = TableBuilder::new(format!(
        "SeeSaw mAP vs store accuracy budget ({} backend)",
        sweep_cfg.backend_name()
    ))
    .header(["search_k", "mAP"]);
    for search_k in [256usize, 1024, 4096, 8192, usize::MAX] {
        let aps = ap_per_query(
            &idx_s,
            &ds,
            &|_, _, _| MethodConfig::seesaw().with_search_k(search_k),
            &proto,
        );
        let label = if search_k == usize::MAX {
            "exact".to_string()
        } else {
            search_k.to_string()
        };
        ap_table.num_row(label, &[mean_ap(&aps)], 3);
    }
    println!("{ap_table}");
    println!("claims under test (§2.2): approximate lookup costs little accuracy —");
    println!("per-backend mAP within a few points of exact, and mAP at the default");
    println!("budget within a few points of the largest; sharded exact search");
    println!("approaches linear speedup up to the core count.");
}
