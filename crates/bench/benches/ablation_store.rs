//! **Ablation: vector-store backends** (paper §2.2).
//!
//! "We saw only a minor drop in accuracy metrics in our benchmarks
//! using Annoy vs an exact but slow scan." Four measurements, all
//! selected through `StoreConfig` rather than hardcoded types:
//!
//! 1. recall@10 and per-lookup latency of every backend (exact scan,
//!    RP forest, IVF — the dense backends at `f32`, `f16`, and `sq8`
//!    row storage) against the exact scan;
//! 2. wall-clock speedup of sharded exact search over the unsharded
//!    scan at 1/2/4/8 shards (the parallelism layer's headline number —
//!    expect ≈ linear scaling up to the machine's core count);
//! 3. end-to-end SeeSaw mAP per backend at the default budget;
//! 4. end-to-end SeeSaw mAP as a function of the candidate budget
//!    (`search_k`) on the default backend;
//! 5. the **quantization sweep**: memory × recall × latency for every
//!    precision (f32, f16, sq8, pq) on the dense-row backends, written
//!    to `BENCH_quant.json` at the repo root (override with
//!    `SEESAW_QUANT_OUT`) so CI can track the trade-off over time. The
//!    IVF cells probe every list so their recall isolates quantization
//!    loss from coarse-probe loss. The sweep also builds dim-512
//!    stores and gates the capacity claims that make 10M-row datasets
//!    fit in RAM: SQ8 scan ≤ 1.1 bytes/element, PQ ADC scan ≤ 0.6
//!    bytes/element, mmap-loaded PQ resident ≤ 1.0 byte/element, and
//!    exact-pq recall@10 ≥ 0.85 after re-rank (`SEESAW_QUANT_STRICT=0`
//!    downgrades the PQ gates to warnings).

use std::fmt::Write as _;
use std::time::Instant;

use seesaw_bench::{ap_per_query, bench_seed, bench_store_config, mean_ap};
use seesaw_core::{MethodConfig, PreprocessConfig, Preprocessor};
use seesaw_dataset::DatasetSpec;
use seesaw_metrics::{BenchmarkProtocol, TableBuilder};
use seesaw_vecstore::{
    ExactStore, IvfConfig, IvfStore, RowPrecision, RpForestConfig, StoreConfig, VectorStore,
};

fn main() {
    let scale = 0.01 * seesaw_bench::env_f64("SEESAW_SCALE", 1.0);
    let ds = DatasetSpec::lvis_like(scale)
        .with_max_queries(20)
        .generate(bench_seed());
    let idx = Preprocessor::new(PreprocessConfig::fast()).build(&ds);
    let data = idx.embeddings.as_slice().to_vec();
    let proto = BenchmarkProtocol::default();
    eprintln!("[ablation_store] {} patch vectors", idx.n_patches());

    let queries: Vec<Vec<f32>> = ds
        .queries()
        .iter()
        .map(|q| ds.model.embed_text(q.concept))
        .collect();

    // --- recall + latency per backend -------------------------------
    // The dense-row backends (exact, IVF) additionally sweep the row
    // storage precision: f16 halves scan bandwidth and costs at most a
    // one-time rounding of each stored row; sq8 quarters it again and
    // re-ranks its top pool against the exact f32 source rows.
    let backends = [
        ("exact", StoreConfig::exact()),
        (
            "exact-f16",
            StoreConfig::exact().with_precision(RowPrecision::F16),
        ),
        (
            "exact-sq8",
            StoreConfig::exact().with_precision(RowPrecision::Sq8),
        ),
        ("forest", StoreConfig::forest(RpForestConfig::default())),
        ("ivf", StoreConfig::ivf(IvfConfig::default())),
        (
            "ivf-f16",
            StoreConfig::ivf(IvfConfig::default()).with_precision(RowPrecision::F16),
        ),
        (
            "ivf-sq8",
            StoreConfig::ivf(IvfConfig::default()).with_precision(RowPrecision::Sq8),
        ),
        (
            "exact-pq",
            StoreConfig::exact().with_precision(RowPrecision::Pq { m: 16, nbits: 8 }),
        ),
        (
            "ivf-pq",
            StoreConfig::ivf(IvfConfig::default())
                .with_precision(RowPrecision::Pq { m: 16, nbits: 8 }),
        ),
    ];
    let exact = StoreConfig::exact().build(idx.dim, data.clone());
    let mut recall_table = TableBuilder::new(
        "Backend recall@10 and lookup latency (default knobs; f32, f16, and sq8 row storage)",
    )
    .header(["backend", "recall@10", "lookup µs"]);
    for (label, cfg) in &backends {
        let store = cfg.clone().build(idx.dim, data.clone());
        let mut hit = 0usize;
        let mut total = 0usize;
        let mut lookup = std::time::Duration::ZERO;
        for q in &queries {
            let truth = exact.top_k(q, 10);
            let t0 = Instant::now();
            let approx = store.top_k(q, 10);
            lookup += t0.elapsed();
            total += truth.len();
            hit += truth
                .iter()
                .filter(|t| approx.iter().any(|h| h.id == t.id))
                .count();
        }
        recall_table.row([
            label.to_string(),
            format!("{:.3}", hit as f64 / total.max(1) as f64),
            format!("{:.0}", lookup.as_secs_f64() * 1e6 / queries.len() as f64),
        ]);
    }
    println!("{recall_table}");

    // --- sharded exact scan: wall-clock vs shard count ---------------
    let mut shard_table =
        TableBuilder::new("Sharded exact scan wall-clock (bit-identical results)").header([
            "shards",
            "lookup µs",
            "speedup",
        ]);
    let mut base_us = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let store = StoreConfig::exact()
            .with_shards(shards)
            .build(idx.dim, data.clone());
        // Warm-up pass, then timed passes over all queries.
        for q in &queries {
            let _ = store.top_k(q, 10);
        }
        let t0 = Instant::now();
        for _ in 0..3 {
            for q in &queries {
                let _ = store.top_k(q, 10);
            }
        }
        let us = t0.elapsed().as_micros() as f64 / (3 * queries.len()) as f64;
        if shards == 1 {
            base_us = us;
        }
        shard_table.row([
            shards.to_string(),
            format!("{us:.0}"),
            format!("{:.2}x", base_us / us.max(1.0)),
        ]);
    }
    println!("{shard_table}");

    // --- end-to-end mAP per backend ----------------------------------
    let mut backend_ap = TableBuilder::new("SeeSaw mAP per store backend (default budget)")
        .header(["backend", "mAP"]);
    for (label, cfg) in &backends {
        // Swap only the store: embeddings, graphs, and M_D are shared.
        // (`build` hands back Arc<DatasetIndex>; clone the inner value
        // to get a mutable copy, then re-share it.)
        let mut idx_b = (*idx).clone();
        idx_b.store = cfg
            .clone()
            .reseeded(PreprocessConfig::fast().seed)
            .build(idx.dim, data.clone());
        let idx_b = std::sync::Arc::new(idx_b);
        let aps = ap_per_query(&idx_b, &ds, &|_, _, _| MethodConfig::seesaw(), &proto);
        backend_ap.num_row(*label, &[mean_ap(&aps)], 3);
    }
    println!("{backend_ap}");

    // --- end-to-end mAP vs candidate budget --------------------------
    let sweep_cfg = bench_store_config();
    let mut idx_s = (*idx).clone();
    idx_s.store = sweep_cfg
        .clone()
        .reseeded(PreprocessConfig::fast().seed)
        .build(idx.dim, data.clone());
    let idx_s = std::sync::Arc::new(idx_s);
    let mut ap_table = TableBuilder::new(format!(
        "SeeSaw mAP vs store accuracy budget ({} backend)",
        sweep_cfg.backend_name()
    ))
    .header(["search_k", "mAP"]);
    for search_k in [256usize, 1024, 4096, 8192, usize::MAX] {
        let aps = ap_per_query(
            &idx_s,
            &ds,
            &|_, _, _| MethodConfig::seesaw().with_search_k(search_k),
            &proto,
        );
        let label = if search_k == usize::MAX {
            "exact".to_string()
        } else {
            search_k.to_string()
        };
        ap_table.num_row(label, &[mean_ap(&aps)], 3);
    }
    println!("{ap_table}");

    // --- quantization sweep: memory × recall × latency ---------------
    quant_sweep(idx.dim, &data, &queries, &exact);

    println!("claims under test (§2.2): approximate lookup costs little accuracy —");
    println!("per-backend mAP within a few points of exact, and mAP at the default");
    println!("budget within a few points of the largest; sharded exact search");
    println!("approaches linear speedup up to the core count; sq8 rows cost ~4x");
    println!("less scan bandwidth than f32 at ≥0.9 recall@10 after re-ranking;");
    println!("pq codes cut the scan below one byte per element (dim-512 gate:");
    println!("≤0.6 B/elem, mmap-loaded resident ≤1.0 B/elem) at ≥0.85 recall@10.");
}

/// One (backend × precision) cell of the quantization sweep.
struct QuantCell {
    backend: &'static str,
    precision: RowPrecision,
    /// Lists probed per query (IVF cells only).
    n_probe: Option<usize>,
    scan_bytes_per_elem: f64,
    resident_bytes_per_elem: f64,
    recall_at_10: f64,
    lookup_us: f64,
}

/// Sweep row-storage precision across the dense-row backends and
/// record memory (bytes/element, measured from the built store, not
/// computed from the format), recall@10 against the exact f32 scan,
/// and per-lookup latency. Writes `BENCH_quant.json` and enforces the
/// dim-512 SQ8 + PQ capacity gates (`SEESAW_QUANT_STRICT=0` opts out
/// of the PQ gates).
fn quant_sweep(dim: usize, data: &[f32], queries: &[Vec<f32>], exact: &dyn VectorStore) {
    let n_elems = data.len();
    let rerank_factor = seesaw_bench::bench_rerank_factor();
    assert!(
        dim.is_multiple_of(8),
        "quant sweep assumes a PQ-divisible dim, got {dim}"
    );
    let precisions = [
        RowPrecision::F32,
        RowPrecision::F16,
        RowPrecision::Sq8,
        RowPrecision::Pq {
            m: dim / 8,
            nbits: 8,
        },
    ];
    // The IVF cells probe *every* list so their recall column isolates
    // quantization loss: at the default `n_probe` the coarse-probe loss
    // dominates and every precision reads the same (≈0.49 at bench
    // scale), which is exactly the confound this sweep exists to avoid.
    // The exact-backend cells report the same precision with no coarse
    // stage at all, so the two rows bracket each quantizer.
    let sweep_ivf = IvfConfig {
        n_probe: IvfConfig::default().n_lists,
        ..IvfConfig::default()
    };
    let mut cells: Vec<QuantCell> = Vec::new();
    for backend in ["exact", "ivf"] {
        for p in precisions {
            // Build the concrete type first: the memory accounting
            // lives on `RowStorage`, behind the `rows()` accessors.
            let (store, scan_bytes, resident_bytes, n_probe): (
                Box<dyn VectorStore>,
                usize,
                usize,
                Option<usize>,
            ) = match backend {
                "exact" => {
                    let s = ExactStore::with_precision(dim, data.to_vec(), p)
                        .with_rerank_factor(rerank_factor);
                    let (sb, rb) = (s.rows().scan_bytes(), s.rows().resident_bytes());
                    (Box::new(s), sb, rb, None)
                }
                _ => {
                    let s =
                        IvfStore::build_with_precision(dim, data.to_vec(), sweep_ivf.clone(), p)
                            .with_rerank_factor(rerank_factor);
                    let (sb, rb) = (s.rows().scan_bytes(), s.rows().resident_bytes());
                    (Box::new(s), sb, rb, Some(sweep_ivf.n_probe))
                }
            };
            let mut hit = 0usize;
            let mut total = 0usize;
            for q in queries {
                let truth = exact.top_k(q, 10);
                let approx = store.top_k(q, 10);
                total += truth.len();
                hit += truth
                    .iter()
                    .filter(|t| approx.iter().any(|h| h.id == t.id))
                    .count();
            }
            // Warm-up pass done above (the recall pass); 3 timed passes.
            let t0 = Instant::now();
            for _ in 0..3 {
                for q in queries {
                    let _ = store.top_k(q, 10);
                }
            }
            let lookup_us = t0.elapsed().as_secs_f64() * 1e6 / (3 * queries.len()).max(1) as f64;
            cells.push(QuantCell {
                backend,
                precision: p,
                n_probe,
                scan_bytes_per_elem: scan_bytes as f64 / n_elems.max(1) as f64,
                resident_bytes_per_elem: resident_bytes as f64 / n_elems.max(1) as f64,
                recall_at_10: hit as f64 / total.max(1) as f64,
                lookup_us,
            });
        }
    }

    let mut table = TableBuilder::new("Quantization sweep: memory × recall@10 × latency").header([
        "backend",
        "precision",
        "n_probe",
        "scan B/elem",
        "resident B/elem",
        "recall@10",
        "lookup µs",
    ]);
    for c in &cells {
        table.row([
            c.backend.to_string(),
            c.precision.label(),
            c.n_probe.map_or_else(|| "-".to_string(), |p| p.to_string()),
            format!("{:.3}", c.scan_bytes_per_elem),
            format!("{:.3}", c.resident_bytes_per_elem),
            format!("{:.3}", c.recall_at_10),
            format!("{:.0}", c.lookup_us),
        ]);
    }
    println!("{table}");

    // Capacity gate at the paper's embedding width: a dim-512 SQ8
    // store must scan ≤ 1.1 bytes/element (1 code byte + 8 param
    // bytes / 512 ≈ 1.016) or 10M-row datasets stop fitting in RAM.
    let n512 = 2048usize;
    let wide = {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(bench_seed());
        let mut buf = Vec::with_capacity(n512 * 512);
        for _ in 0..n512 {
            buf.extend_from_slice(&seesaw_linalg::random_unit_vector(&mut rng, 512));
        }
        buf
    };
    let sq8_512 = ExactStore::with_precision(512, wide.clone(), RowPrecision::Sq8);
    let dim512_scan = sq8_512.rows().scan_bytes() as f64 / (n512 * 512) as f64;
    eprintln!("[ablation_store] dim-512 sq8 scan footprint: {dim512_scan:.4} bytes/element");
    assert!(
        dim512_scan <= 1.1,
        "sq8 at dim 512 must scan ≤ 1.1 bytes/element, measured {dim512_scan:.4}"
    );

    // PQ capacity gates at the same width (ISSUE 9): the ADC code scan
    // must touch ≤ 0.6 bytes/element (m = 64 → 0.125), and an
    // mmap-loaded PQ index — f32 re-rank rows demand-paged from disk,
    // codes + codebooks resident — must hold ≤ 1.0 byte/element.
    // `SEESAW_QUANT_STRICT=0` downgrades gate failures to warnings
    // (e.g. while bisecting a regression).
    let strict = std::env::var("SEESAW_QUANT_STRICT").map_or(true, |v| v != "0");
    let gate = |ok: bool, msg: String| {
        if ok {
            return;
        }
        assert!(!strict, "{msg} (SEESAW_QUANT_STRICT=0 to downgrade)");
        eprintln!("[ablation_store] WARNING (gate skipped): {msg}");
    };
    let pq_512 = RowPrecision::Pq { m: 64, nbits: 8 };
    let pq_store = ExactStore::with_precision(512, wide, pq_512).with_rerank_factor(rerank_factor);
    let pq512_scan = pq_store.rows().scan_bytes() as f64 / (n512 * 512) as f64;
    eprintln!("[ablation_store] dim-512 pq scan footprint: {pq512_scan:.4} bytes/element");
    gate(
        pq512_scan <= 0.6,
        format!("pq at dim 512 must scan ≤ 0.6 bytes/element, measured {pq512_scan:.4}"),
    );
    let pq512_resident = {
        use seesaw_vecstore::{load_store, save_store, AnyStore};
        let path =
            std::env::temp_dir().join(format!("seesaw_quant_gate_{}.ssawidx", std::process::id()));
        save_store(&AnyStore::Exact(pq_store), &path).expect("saving pq gate index");
        let loaded = load_store(&path).expect("loading pq gate index");
        let _ = std::fs::remove_file(&path);
        let AnyStore::Exact(s) = &loaded else {
            panic!("pq gate index changed variant on load");
        };
        s.rows().resident_bytes() as f64 / (n512 * 512) as f64
    };
    eprintln!(
        "[ablation_store] dim-512 pq mmap-loaded resident: {pq512_resident:.4} bytes/element"
    );
    gate(
        pq512_resident <= 1.0,
        format!(
            "mmap-loaded pq at dim 512 must hold ≤ 1.0 byte/element, measured {pq512_resident:.4}"
        ),
    );
    // The recall half of the capacity claim: byte-per-element scans are
    // only useful if re-ranking recovers the accuracy. Gate on the
    // exact-backend PQ cell so coarse-probe loss cannot confound it.
    let pq_exact_recall = cells
        .iter()
        .find(|c| c.backend == "exact" && matches!(c.precision, RowPrecision::Pq { .. }))
        .map_or(0.0, |c| c.recall_at_10);
    gate(
        pq_exact_recall >= 0.85,
        format!("exact-pq recall@10 must stay ≥ 0.85 after re-rank, measured {pq_exact_recall:.4}"),
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"ablation_store_quant\",");
    let _ = writeln!(json, "  \"dim\": {dim},");
    let _ = writeln!(json, "  \"rows\": {},", n_elems / dim.max(1));
    let _ = writeln!(json, "  \"queries\": {},", queries.len());
    let _ = writeln!(json, "  \"rerank_pool_factor\": {rerank_factor},");
    let _ = writeln!(
        json,
        "  \"sq8_dim512_scan_bytes_per_element\": {dim512_scan:.4},"
    );
    let _ = writeln!(
        json,
        "  \"pq_dim512_scan_bytes_per_element\": {pq512_scan:.4},"
    );
    let _ = writeln!(
        json,
        "  \"pq_dim512_mmap_resident_bytes_per_element\": {pq512_resident:.4},"
    );
    let _ = writeln!(json, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let n_probe = c
            .n_probe
            .map_or_else(|| "null".to_string(), |p| p.to_string());
        let _ = write!(
            json,
            "    {{\"backend\": \"{}\", \"precision\": \"{}\", \"n_probe\": {}, \
             \"scan_bytes_per_element\": {:.4}, \"resident_bytes_per_element\": {:.4}, \
             \"recall_at_10\": {:.4}, \"lookup_us\": {:.2}}}",
            c.backend,
            c.precision.label(),
            n_probe,
            c.scan_bytes_per_elem,
            c.resident_bytes_per_elem,
            c.recall_at_10,
            c.lookup_us
        );
        let _ = writeln!(json, "{}", if i + 1 < cells.len() { "," } else { "" });
    }
    let _ = writeln!(json, "  ]");
    let _ = writeln!(json, "}}");

    let default_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_quant.json");
    let out_path = std::env::var("SEESAW_QUANT_OUT").unwrap_or_else(|_| default_path.to_string());
    std::fs::write(&out_path, &json).unwrap_or_else(|e| panic!("writing {out_path}: {e}"));
    eprintln!("[ablation_store] wrote {out_path}");
}
