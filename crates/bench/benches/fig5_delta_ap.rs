//! **Figure 5** — distribution of the per-query change in AP
//! (ΔAP = SeeSaw − zero-shot CLIP) per dataset, over all queries and
//! over the hard subset: the [.1, .9] quantile interval, the share of
//! regressions (ΔAP < 0), and min/median/max.
//!
//! Paper claims: "more than 90% of the queries improving or staying the
//! same"; the min is usually close to 0; regressions trace back to the
//! multiscale representation occasionally demoting the first result.

use seesaw_bench::{
    ap_per_query, bench_suite, build_indexes, hard_subset, select_hard, IndexNeeds,
};
use seesaw_core::MethodConfig;
use seesaw_metrics::{quantile, BenchmarkProtocol, TableBuilder};

fn delta_row(table: &mut TableBuilder, label: &str, deltas: &[f64]) {
    if deltas.is_empty() {
        table.row([
            label.to_string(),
            "n/a".into(),
            "".into(),
            "".into(),
            "".into(),
            "".into(),
        ]);
        return;
    }
    let non_regressed = deltas.iter().filter(|&&d| d >= -1e-9).count() as f64 / deltas.len() as f64;
    table.row([
        label.to_string(),
        format!("{:.2}", quantile(deltas, 0.0)),
        format!("{:.2}", quantile(deltas, 0.1)),
        format!("{:.2}", quantile(deltas, 0.5)),
        format!("{:.2}", quantile(deltas, 0.9)),
        format!("{:.2}", quantile(deltas, 1.0)),
    ]);
    println!(
        "  {label}: {:.0}% of queries improved or unchanged",
        non_regressed * 100.0
    );
}

fn main() {
    let specs = bench_suite();
    let needs = IndexNeeds {
        multiscale: true,
        coarse: true,
        db_matrix: true,
        propagation: false,
        ens_graph: false,
    };
    let built = build_indexes(&specs, needs);
    let proto = BenchmarkProtocol::default();

    let mut table =
        TableBuilder::new("Figure 5 — ΔAP (SeeSaw multiscale − zero-shot coarse) quantiles")
            .header(["dataset/subset", "min", "p10", "median", "p90", "max"]);

    for b in &built {
        eprintln!("[fig5] {}…", b.dataset.name);
        let coarse = b.coarse.as_ref().unwrap();
        let multi = b.multiscale.as_ref().unwrap();
        let zs = ap_per_query(
            coarse,
            &b.dataset,
            &|_, _, _| MethodConfig::zero_shot(),
            &proto,
        );
        let ss = ap_per_query(multi, &b.dataset, &|_, _, _| MethodConfig::seesaw(), &proto);
        let deltas: Vec<f64> = ss.iter().zip(zs.iter()).map(|(s, z)| s - z).collect();
        let hard = hard_subset(&zs);
        let hard_deltas = select_hard(&deltas, &hard);
        delta_row(&mut table, &format!("{} (all)", b.dataset.name), &deltas);
        delta_row(
            &mut table,
            &format!("{} (hard)", b.dataset.name),
            &hard_deltas,
        );
    }

    println!("\n{table}");
    println!("paper: >90% of queries improve or stay the same; ΔAP larger on the hard subset.");
}
