//! **Table 7** — hyperparameter sensitivity: SeeSaw mean AP per dataset
//! for a grid of (λc, λD, λ) values spanning an order of magnitude
//! around the defaults.
//!
//! The paper's grid centres on (λc, λD, λ) = (10, 1000, 100) for 512-d
//! CLIP with unweighted multiscale feedback; this reproduction's
//! loss balance is calibrated at (1, 100, 1) (see `AlignerConfig` docs
//! and EXPERIMENTS.md), so the grid spans the same ×3 / ÷3 pattern
//! around *our* centre. The claim under test is the paper's: "SeeSaw
//! handles hyperparameter values varying an order of magnitude while
//! still improving results vs. zero-shot CLIP", with all datasets
//! peaking at similar values.

use seesaw_aligner::AlignerConfig;
use seesaw_bench::{ap_per_query, bench_suite, build_indexes, mean_ap, IndexNeeds};
use seesaw_core::{Method, MethodConfig};
use seesaw_metrics::{BenchmarkProtocol, TableBuilder};

fn main() {
    let specs = bench_suite();
    let needs = IndexNeeds {
        multiscale: true,
        coarse: false,
        db_matrix: true,
        propagation: false,
        ens_graph: false,
    };
    let built = build_indexes(&specs, needs);
    let proto = BenchmarkProtocol::default();

    // Mirror the paper's 11-row grid pattern around our calibrated
    // centre (λc = 1, λD = 100, λ = 1).
    let grid: Vec<(f64, f64, f64)> = vec![
        (0.3, 30.0, 1.0),
        (0.3, 100.0, 1.0),
        (0.3, 300.0, 1.0),
        (1.0, 30.0, 1.0),
        (1.0, 100.0, 0.3),
        (1.0, 100.0, 1.0), // ← benchmark setting
        (1.0, 100.0, 3.0),
        (1.0, 300.0, 1.0),
        (3.0, 30.0, 1.0),
        (3.0, 100.0, 1.0),
        (3.0, 300.0, 1.0),
    ];

    let mut table = TableBuilder::new("Table 7 — SeeSaw mean AP per hyperparameter setting")
        .header(["λc", "λD", "λ", "BDD", "COCO", "LVIS", "ObjNet", "avg."]);

    let zero_shot_avg = {
        let mut vals = Vec::new();
        for b in &built {
            let idx = b.multiscale.as_ref().unwrap();
            let aps = ap_per_query(
                idx,
                &b.dataset,
                &|_, _, _| MethodConfig::zero_shot(),
                &proto,
            );
            vals.push(mean_ap(&aps));
        }
        vals.iter().sum::<f64>() / vals.len() as f64
    };

    for &(lc, ld, l) in &grid {
        eprintln!("[table7] λc={lc} λD={ld} λ={l}…");
        let mut per: std::collections::BTreeMap<&str, f64> = Default::default();
        for b in &built {
            let idx = b.multiscale.as_ref().unwrap();
            let aps = ap_per_query(
                idx,
                &b.dataset,
                &|_, _, _| MethodConfig {
                    method: Method::SeeSaw(AlignerConfig {
                        lambda: l,
                        lambda_c: lc,
                        lambda_d: ld,
                        ..AlignerConfig::default()
                    }),
                    search_k: 8192,
                },
                &proto,
            );
            per.insert(
                b.dataset.name.as_str().split('-').next().unwrap_or(""),
                mean_ap(&aps),
            );
        }
        let bdd = per.get("bdd").copied().unwrap_or(f64::NAN);
        let coco = per.get("coco").copied().unwrap_or(f64::NAN);
        let lvis = per.get("lvis").copied().unwrap_or(f64::NAN);
        let objnet = per.get("objectnet").copied().unwrap_or(f64::NAN);
        let avg = (bdd + coco + lvis + objnet) / 4.0;
        table.row([
            format!("{lc}"),
            format!("{ld}"),
            format!("{l}"),
            format!("{bdd:.2}"),
            format!("{coco:.2}"),
            format!("{lvis:.2}"),
            format!("{objnet:.2}"),
            format!("{avg:.2}"),
        ]);
    }

    println!("{table}");
    println!("zero-shot multiscale avg for comparison: {zero_shot_avg:.2}");
    println!("claim under test: every row beats zero-shot; rows differ by ≲0.02,");
    println!("mirroring the paper's Table 7 stability (their rows: 0.78–0.80).");
}
