//! **Serving-layer throughput: global lock vs per-session locks.**
//!
//! The old `Engine` design funneled every `next_batch`/`feedback` call
//! through one global `Mutex<HashMap<…, Session>>`, so N concurrent
//! users serialized on each other's vector-store lookups and alignment
//! solves. The owned [`SearchService`] shards the registry and locks
//! per session — registry locks are held only for lookup/insert/remove.
//! This harness replays the same workload (threads × sessions doing
//! create → next_batch/feedback rounds → close) against both designs
//! and reports sessions/sec; per-session locking should pull ahead as
//! threads grow and win clearly by 8.
//!
//! Knobs: `SEESAW_THREADS` caps the sweep (default 8; the sweep runs
//! 1, 2, 4, … up to the cap), `SEESAW_SCALE` scales the dataset.
//!
//! ```sh
//! cargo bench --bench engine_throughput
//! SEESAW_THREADS=16 cargo bench --bench engine_throughput
//! ```

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use seesaw_bench::{bench_seed, env_usize, percentile};
use seesaw_core::{
    Batch, DatasetIndex, MethodConfig, PreprocessConfig, Preprocessor, SearchService, Session,
    SimulatedUser,
};
use seesaw_dataset::{DatasetSpec, SyntheticDataset};
use seesaw_metrics::TableBuilder;

/// Faithful reconstruction of the retired global-lock engine: one
/// mutex around the whole session map, held for the full duration of
/// every lookup and alignment solve.
struct GlobalLockEngine {
    index: Arc<DatasetIndex>,
    dataset: Arc<SyntheticDataset>,
    sessions: Mutex<HashMap<u64, Session>>,
    next_id: AtomicU64,
}

impl GlobalLockEngine {
    fn new(index: Arc<DatasetIndex>, dataset: Arc<SyntheticDataset>) -> Self {
        Self {
            index,
            dataset,
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(0),
        }
    }

    fn create_session(&self, concept: u32, config: MethodConfig) -> u64 {
        let session = Session::start(&self.index, &self.dataset, concept, config);
        let id = self.next_id.fetch_add(1, Ordering::Relaxed);
        self.sessions.lock().unwrap().insert(id, session);
        id
    }

    fn next_batch(&self, id: u64, n: usize) -> Option<Vec<u32>> {
        // The defining flaw: the store lookup and the aligner solve run
        // *inside* the registry lock.
        self.sessions
            .lock()
            .unwrap()
            .get_mut(&id)
            .map(|s| s.next_batch(n))
    }

    fn feedback(&self, id: u64, fb: seesaw_core::Feedback) -> bool {
        match self.sessions.lock().unwrap().get_mut(&id) {
            Some(s) => s.try_feedback(fb),
            None => false,
        }
    }

    fn stats_probe(&self, id: u64) -> bool {
        // Even a read must take the one big lock.
        self.sessions.lock().unwrap().get(&id).is_some()
    }

    fn close(&self, id: u64) -> bool {
        self.sessions.lock().unwrap().remove(&id).is_some()
    }
}

/// What one design run reports: bulk throughput plus the latency an
/// *observer* (a cheap stats probe on an idle session) saw while the
/// workers hammered their own sessions.
struct WorkloadReport {
    sessions_per_sec: f64,
    probe_p50_ms: f64,
    probe_p99_ms: f64,
}

/// Run `threads` × `sessions_per_thread` sessions against one design.
/// The per-design plumbing comes in as closures so both engines replay
/// byte-identical workloads. `probe` checks an idle session the way a
/// dashboard would; under a global lock it queues behind every worker's
/// alignment solve, under per-session locks it never does — a
/// difference that shows even on a single core, where wall-clock
/// throughput cannot.
fn run_workload<C, N, F, K, P>(
    threads: usize,
    sessions_per_thread: usize,
    rounds: usize,
    dataset: &Arc<SyntheticDataset>,
    create: C,
    next_batch: N,
    feedback: F,
    close: K,
    probe: P,
) -> WorkloadReport
where
    C: Fn(u32) -> u64 + Sync,
    N: Fn(u64, usize) -> Vec<u32> + Sync,
    F: Fn(u64, seesaw_core::Feedback) -> bool + Sync,
    K: Fn(u64) -> bool + Sync,
    P: Fn(u64) -> bool + Sync,
{
    let idle = create(dataset.queries()[0].concept);
    let finished = std::sync::atomic::AtomicUsize::new(0);
    let mut probe_ms: Vec<f64> = Vec::new();
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..threads {
            let dataset = Arc::clone(dataset);
            let (create, next_batch, feedback, close) = (&create, &next_batch, &feedback, &close);
            let finished = &finished;
            scope.spawn(move || {
                let user = SimulatedUser::new(&dataset);
                let queries = dataset.queries();
                for s in 0..sessions_per_thread {
                    let concept = queries[(t * sessions_per_thread + s) % queries.len()].concept;
                    let id = create(concept);
                    let mut shown = 0usize;
                    for _ in 0..rounds {
                        let batch = next_batch(id, 1);
                        if batch.is_empty() {
                            break;
                        }
                        for img in batch {
                            shown += 1;
                            assert!(
                                feedback(id, user.annotate(img, concept)),
                                "feedback must be accepted"
                            );
                        }
                    }
                    assert!(shown > 0, "workload must do real work");
                    assert!(close(id), "close must find the session");
                }
                finished.fetch_add(1, Ordering::Release);
            });
        }
        // The observer: probe the idle session until the workers finish.
        let observer = scope.spawn(|| {
            let mut samples = Vec::new();
            while finished.load(Ordering::Acquire) < threads {
                let p0 = Instant::now();
                assert!(probe(idle), "idle session must stay probeable");
                samples.push(p0.elapsed().as_secs_f64() * 1e3);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            samples
        });
        probe_ms = observer.join().unwrap();
    });
    let elapsed = t0.elapsed().as_secs_f64();
    assert!(close(idle), "idle session must close");
    WorkloadReport {
        sessions_per_sec: (threads * sessions_per_thread) as f64 / elapsed,
        probe_p50_ms: percentile(&mut probe_ms, 0.50),
        probe_p99_ms: percentile(&mut probe_ms, 0.99),
    }
}

fn main() {
    let max_threads = env_usize("SEESAW_THREADS", 8).max(1);
    let scale = 0.002 * seesaw_bench::env_f64("SEESAW_SCALE", 1.0);
    let sessions_per_thread = env_usize("SEESAW_SESSIONS", 4);
    let rounds = 6;

    let dataset = Arc::new(
        DatasetSpec::coco_like(scale)
            .with_max_queries(16)
            .generate(bench_seed()),
    );
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    eprintln!(
        "[engine_throughput] {} images, {} patch vectors; {} sessions/thread × {} rounds",
        dataset.n_images(),
        index.n_patches(),
        sessions_per_thread,
        rounds
    );

    let mut sweep = vec![1usize];
    while *sweep.last().unwrap() < max_threads {
        sweep.push((sweep.last().unwrap() * 2).min(max_threads));
    }

    let mut table = TableBuilder::new(
        "Serving layer: global lock vs per-session locks (sessions/sec; observer stats-probe ms)",
    )
    .header([
        "threads",
        "global s/s",
        "service s/s",
        "speedup",
        "global p99",
        "service p99",
        "isolation",
    ]);

    for &threads in &sweep {
        // Fresh services per row so registry sizes match across rows.
        let global = GlobalLockEngine::new(Arc::clone(&index), Arc::clone(&dataset));
        let global_report = run_workload(
            threads,
            sessions_per_thread,
            rounds,
            &dataset,
            |c| global.create_session(c, MethodConfig::seesaw()),
            |id, n| global.next_batch(id, n).expect("session is live"),
            |id, fb| global.feedback(id, fb),
            |id| global.close(id),
            |id| global.stats_probe(id),
        );

        let service = SearchService::new(Arc::clone(&index), Arc::clone(&dataset));
        let service_report = run_workload(
            threads,
            sessions_per_thread,
            rounds,
            &dataset,
            |c| {
                service
                    .create_session(c, MethodConfig::seesaw())
                    .expect("valid concept")
                    .raw()
            },
            |id, n| match service
                .next_batch(seesaw_core::SessionId::from_raw(id), n)
                .expect("session is live")
            {
                Batch::Images(images) => images,
                Batch::Exhausted => Vec::new(),
            },
            |id, fb| {
                service
                    .feedback(seesaw_core::SessionId::from_raw(id), fb)
                    .is_ok()
            },
            |id| service.close(seesaw_core::SessionId::from_raw(id)).is_ok(),
            |id| service.stats(seesaw_core::SessionId::from_raw(id)).is_ok(),
        );

        table.row([
            threads.to_string(),
            format!("{:.1}", global_report.sessions_per_sec),
            format!("{:.1}", service_report.sessions_per_sec),
            format!(
                "{:.2}x",
                service_report.sessions_per_sec / global_report.sessions_per_sec.max(1e-9)
            ),
            format!(
                "{:.2}/{:.2}",
                global_report.probe_p50_ms, global_report.probe_p99_ms
            ),
            format!(
                "{:.2}/{:.2}",
                service_report.probe_p50_ms, service_report.probe_p99_ms
            ),
            format!(
                "{:.1}x",
                global_report.probe_p99_ms / service_report.probe_p99_ms.max(1e-9)
            ),
        ]);
    }
    println!("{table}");
    println!("two claims under test, one per resource dimension:");
    println!("  • throughput (speedup column): with ≥2 cores the global lock flatlines");
    println!("    while per-session locking scales — the win must be clear by 8 threads.");
    println!("    (On a single-core host both serialize on the CPU and the column");
    println!("    stays ≈1x; the probe columns still expose the design difference.)");
    println!("  • isolation (p50/p99 probe columns): a cheap stats() on an *idle*");
    println!("    session queues behind whole alignment solves under the global lock,");
    println!("    but never waits under per-session locks — its p99 should be");
    println!("    an order of magnitude lower for the service on any host.");
}
