//! Developer probe: how far does the aligned query move from q0 across
//! rounds, per hyperparameter setting, on hard coarse queries?

use seesaw_aligner::AlignerConfig;
use seesaw_bench::{ap_per_query, bench_seed, hard_subset, mean_ap, select_hard};
use seesaw_core::{Method, MethodConfig, PreprocessConfig, Preprocessor, Session, SimulatedUser};
use seesaw_dataset::DatasetSpec;
use seesaw_metrics::BenchmarkProtocol;

fn main() {
    for spec in [
        DatasetSpec::objectnet_like(0.01).with_max_queries(30),
        DatasetSpec::lvis_like(0.01).with_max_queries(30),
    ] {
        probe(spec);
    }
}

fn probe(spec: DatasetSpec) {
    let ds = spec.generate(bench_seed());
    let idx = Preprocessor::new(PreprocessConfig::fast().coarse_only()).build(&ds);
    let proto = BenchmarkProtocol::default();

    // Hard queries under zero-shot.
    let zs = ap_per_query(&idx, &ds, &|_, _, _| MethodConfig::zero_shot(), &proto);
    let hard = hard_subset(&zs);
    println!(
        "objectnet-like: {} queries, {} hard, zshot mAP {:.3} (hard {:.3})",
        zs.len(),
        hard.len(),
        mean_ap(&zs),
        mean_ap(&select_hard(&zs, &hard))
    );

    // Trace query movement for the first hard query under default SeeSaw.
    if let Some(&hq) = hard.first() {
        let concept = ds.queries()[hq].concept;
        let user = SimulatedUser::new(&ds);
        let mut s = Session::start(&idx, &ds, concept, MethodConfig::seesaw());
        println!(
            "movement trace for hard concept {concept} (deficit {:.2}):",
            ds.model.spec(concept).deficit_angle
        );
        for round in 0..30 {
            let batch = s.next_batch(1);
            let Some(&img) = batch.first() else { break };
            let fb = user.annotate(img, concept);
            let rel = fb.relevant;
            s.feedback(fb);
            let cos_q0 = seesaw_linalg::cosine(s.current_query(), s.q0());
            let cos_tgt =
                seesaw_linalg::cosine(s.current_query(), ds.model.concept_direction(concept));
            if round % 5 == 0 || rel {
                println!(
                    "  round {round:>2} rel={} cos(q,q0)={cos_q0:.3} cos(q,concept)={cos_tgt:.3}",
                    rel as u8
                );
            }
        }
    }

    // Hyperparameter sweep on the hard subset.
    println!("\nsweep (coarse, hard subset of {} queries):", hard.len());
    println!(
        "{:>8} {:>8} {:>8} | {:>7} {:>7}",
        "lambda", "l_c", "l_d", "mAP", "hard"
    );
    for (l, lc, ld) in [
        (1.0, 1.0, 0.0),
        (1.0, 0.5, 0.0),
        (1.0, 2.0, 0.0),
        (1.0, 1.0, 3.0),
        (1.0, 1.0, 10.0),
        (1.0, 1.0, 30.0),
        (1.0, 1.0, 100.0),
        (0.3, 1.0, 10.0),
        (3.0, 1.0, 10.0),
    ] {
        let aps = ap_per_query(
            &idx,
            &ds,
            &|_, _, _| MethodConfig {
                method: Method::SeeSaw(AlignerConfig {
                    lambda: l,
                    lambda_c: lc,
                    lambda_d: ld,
                    ..AlignerConfig::default()
                }),
                search_k: 8192,
            },
            &proto,
        );
        println!(
            "{l:>8} {lc:>8} {ld:>8} | {:>7.3} {:>7.3}",
            mean_ap(&aps),
            mean_ap(&select_hard(&aps, &hard))
        );
    }
}
