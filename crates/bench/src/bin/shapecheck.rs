//! Quick qualitative check that the reproduction exhibits the paper's
//! orderings before running the full table benches. Developer tool, not
//! a paper artifact.

use seesaw_bench::{
    ap_per_query, bench_suite, build_indexes, hard_subset, mean_ap, select_hard, IndexNeeds,
};
use seesaw_core::MethodConfig;
use seesaw_metrics::BenchmarkProtocol;

fn main() {
    let specs = bench_suite();
    let needs = IndexNeeds {
        multiscale: true,
        coarse: true,
        db_matrix: true,
        propagation: false,
        ens_graph: false,
    };
    let built = build_indexes(&specs, needs);
    let proto = BenchmarkProtocol::default();

    println!(
        "dataset        idx    n_img n_patch  zshot  fshot  qalign seesaw | hard: zs fs qa ss (n)"
    );
    for b in &built {
        for (label, idx) in [
            ("coarse", b.coarse.as_ref().unwrap()),
            ("multi", b.multiscale.as_ref().unwrap()),
        ] {
            let zs = ap_per_query(
                idx,
                &b.dataset,
                &|_, _, _| MethodConfig::zero_shot(),
                &proto,
            );
            let fs = ap_per_query(
                idx,
                &b.dataset,
                &|_, _, _| MethodConfig::seesaw_few_shot(),
                &proto,
            );
            let qa = ap_per_query(
                idx,
                &b.dataset,
                &|_, _, _| MethodConfig::seesaw_clip_only(),
                &proto,
            );
            let ss = ap_per_query(idx, &b.dataset, &|_, _, _| MethodConfig::seesaw(), &proto);
            let hard = hard_subset(&zs);
            println!(
                "{:<14} {:<6} {:>5} {:>7} {:>6.3} {:>6.3} {:>6.3} {:>6.3} |      {:.2} {:.2} {:.2} {:.2} ({})",
                b.dataset.name,
                label,
                b.dataset.n_images(),
                idx.n_patches(),
                mean_ap(&zs),
                mean_ap(&fs),
                mean_ap(&qa),
                mean_ap(&ss),
                mean_ap(&select_hard(&zs, &hard)),
                mean_ap(&select_hard(&fs, &hard)),
                mean_ap(&select_hard(&qa, &hard)),
                mean_ap(&select_hard(&ss, &hard)),
                hard.len(),
            );
        }
    }
}
