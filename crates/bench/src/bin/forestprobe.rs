//! Developer probe: RP-forest recall on realistic patch distributions
//! as a function of tree count / leaf size / search_k.

use seesaw_bench::bench_seed;
use seesaw_core::{PreprocessConfig, Preprocessor};
use seesaw_dataset::DatasetSpec;
use seesaw_vecstore::{ExactStore, RpForest, RpForestConfig, VectorStore};

fn main() {
    let ds = DatasetSpec::lvis_like(0.01)
        .with_max_queries(20)
        .generate(bench_seed());
    let mut cfg = PreprocessConfig::fast();
    cfg.build_db_matrix = false;
    cfg.build_propagation = false;
    cfg.build_coarse_graph = false;
    let idx = Preprocessor::new(cfg).build(&ds);
    let data = idx.embeddings.as_slice().to_vec();
    let exact = ExactStore::new(idx.dim, data.clone());
    let queries: Vec<Vec<f32>> = ds
        .queries()
        .iter()
        .map(|q| ds.model.embed_text(q.concept))
        .collect();
    println!("n = {} patches, dim = {}", idx.n_patches(), idx.dim);
    println!(
        "{:>7} {:>5} {:>9} {:>9} {:>9}",
        "trees", "leaf", "sk=1024", "sk=4096", "sk=16384"
    );
    for (trees, leaf) in [(16usize, 32usize), (32, 16), (64, 16), (32, 8), (64, 8)] {
        let forest = RpForest::build(
            idx.dim,
            data.clone(),
            RpForestConfig {
                n_trees: trees,
                leaf_size: leaf,
                search_k: 4096,
                seed: 1,
            },
        );
        let mut cells = Vec::new();
        for sk in [1024usize, 4096, 16384] {
            let mut hit = 0;
            let mut total = 0;
            for q in &queries {
                let truth = exact.top_k(q, 10);
                let approx = forest.top_k_with_search_k(q, 10, sk, &|_| true);
                total += truth.len();
                hit += truth
                    .iter()
                    .filter(|t| approx.iter().any(|h| h.id == t.id))
                    .count();
            }
            cells.push(hit as f64 / total.max(1) as f64);
        }
        println!(
            "{trees:>7} {leaf:>5} {:>9.3} {:>9.3} {:>9.3}",
            cells[0], cells[1], cells[2]
        );
    }
}
