//! The §5.5 user simulator.
//!
//! The paper's end-to-end study decomposes task time into per-image
//! annotation time (Table 5) plus system latency, measured over 20 grad
//! students and 20 MTurk workers. We reproduce the decomposition with
//! the paper's measured per-image costs:
//!
//! | condition         | baseline | SeeSaw |
//! |-------------------|---------:|-------:|
//! | not marked        |   1.98 s | 2.40 s |
//! | marked relevant   |   3.00 s | 4.40 s |
//!
//! Simulated users draw a personal speed factor (lognormal) and
//! per-image lognormal noise; task time accumulates annotation costs
//! and per-iteration system latency until 10 results are found or the
//! 6-minute cap expires (Fig. 6's protocol).

use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use seesaw_metrics::SearchTrace;

/// Per-image annotation cost model (seconds).
#[derive(Clone, Copy, Debug)]
pub struct AnnotationModel {
    /// Mean seconds to skip a non-relevant image.
    pub not_marked: f64,
    /// Mean seconds to mark a relevant image (including box feedback
    /// where applicable).
    pub marked: f64,
}

impl AnnotationModel {
    /// The baseline UI costs measured in Table 5 (mark = keystroke).
    pub fn baseline() -> Self {
        Self {
            not_marked: 1.98,
            marked: 3.00,
        }
    }

    /// The SeeSaw UI costs measured in Table 5 (mark = keystroke + box).
    pub fn seesaw() -> Self {
        Self {
            not_marked: 2.40,
            marked: 4.40,
        }
    }
}

/// Simulation parameters.
#[derive(Clone, Copy, Debug)]
pub struct UserSimConfig {
    /// Task deadline in seconds (paper: 360).
    pub deadline: f64,
    /// Results required to complete the task (paper: 10).
    pub target_results: usize,
    /// σ of the per-user lognormal speed factor.
    pub user_sigma: f64,
    /// σ of the per-image lognormal noise.
    pub image_sigma: f64,
}

impl Default for UserSimConfig {
    fn default() -> Self {
        Self {
            deadline: 360.0,
            target_results: 10,
            user_sigma: 0.25,
            image_sigma: 0.35,
        }
    }
}

/// A lognormal with **unit mean** (`exp(−σ²/2 + σZ)`), so noise scales
/// the paper's measured means without biasing them.
pub fn unit_mean_lognormal(sigma: f64) -> LogNormal<f64> {
    LogNormal::new(-sigma * sigma / 2.0, sigma).expect("valid lognormal")
}

/// Simulate one user working through a search trace: returns the time
/// (seconds, capped at the deadline) until `target_results` relevant
/// images were marked. `latencies` gives the measured per-iteration
/// system time (shorter slices are cycled; empty means zero latency).
pub fn simulate_task_time(
    trace: &SearchTrace,
    latencies: &[f64],
    model: &AnnotationModel,
    cfg: &UserSimConfig,
    seed: u64,
) -> f64 {
    let mut rng = StdRng::seed_from_u64(seed);
    let user_speed = unit_mean_lognormal(cfg.user_sigma).sample(&mut rng);
    let image_noise = unit_mean_lognormal(cfg.image_sigma);
    let mut t = 0.0f64;
    let mut found = 0usize;
    for (i, &relevant) in trace.relevance.iter().enumerate() {
        if !latencies.is_empty() {
            t += latencies[i % latencies.len()];
        }
        let mean = if relevant {
            model.marked
        } else {
            model.not_marked
        };
        t += mean * user_speed * image_noise.sample(&mut rng);
        if t >= cfg.deadline {
            return cfg.deadline;
        }
        if relevant {
            found += 1;
            if found >= cfg.target_results {
                return t;
            }
        }
    }
    // Ran out of trace before finding enough: the user never completes.
    cfg.deadline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_relevant(n: usize) -> SearchTrace {
        SearchTrace::new(vec![true; n])
    }

    #[test]
    fn fast_task_completes_before_deadline() {
        let t = simulate_task_time(
            &all_relevant(10),
            &[0.1],
            &AnnotationModel::baseline(),
            &UserSimConfig::default(),
            1,
        );
        assert!(t < 360.0);
        assert!(t > 10.0 * 1.0, "ten marked images cost real time: {t}");
    }

    #[test]
    fn hopeless_trace_hits_deadline() {
        let trace = SearchTrace::new(vec![false; 30]);
        let t = simulate_task_time(
            &trace,
            &[],
            &AnnotationModel::seesaw(),
            &UserSimConfig::default(),
            2,
        );
        assert_eq!(t, 360.0);
    }

    #[test]
    fn seesaw_annotation_overhead_is_visible() {
        // Same trace, same user seed: SeeSaw marking costs more per
        // image (Table 5), so an easy task takes longer — the paper's
        // observation that "SeeSaw can be slower than the baseline" on
        // easy queries.
        let trace = all_relevant(10);
        let base = simulate_task_time(
            &trace,
            &[],
            &AnnotationModel::baseline(),
            &UserSimConfig::default(),
            3,
        );
        let ss = simulate_task_time(
            &trace,
            &[],
            &AnnotationModel::seesaw(),
            &UserSimConfig::default(),
            3,
        );
        assert!(ss > base, "seesaw {ss} vs baseline {base}");
    }

    #[test]
    fn deterministic_per_seed() {
        let trace = all_relevant(10);
        let a = simulate_task_time(
            &trace,
            &[0.2],
            &AnnotationModel::baseline(),
            &UserSimConfig::default(),
            9,
        );
        let b = simulate_task_time(
            &trace,
            &[0.2],
            &AnnotationModel::baseline(),
            &UserSimConfig::default(),
            9,
        );
        assert_eq!(a, b);
    }
}
