//! Dataset and index construction shared by the bench targets.

use seesaw_core::{PreprocessConfig, Preprocessor};
use seesaw_dataset::{DatasetSpec, SyntheticDataset};
use seesaw_vecstore::{RowPrecision, StoreConfig};

use crate::{env_f64, env_usize};

/// Experiment seed (`SEESAW_SEED`, default 7).
pub fn bench_seed() -> u64 {
    env_usize("SEESAW_SEED", 7) as u64
}

/// Row-storage precision for bench indexes (`SEESAW_PRECISION` =
/// `f32` | `f16` | `sq8` | `pq[<m>[x<nbits>]]`, default `f32`).
///
/// # Panics
/// Panics on an unknown value, mirroring [`bench_store_config`]: a
/// typo must not silently benchmark full-precision rows.
pub fn bench_precision() -> RowPrecision {
    match std::env::var("SEESAW_PRECISION") {
        Err(_) => RowPrecision::F32,
        Ok(name) => RowPrecision::parse(&name).unwrap_or_else(|| {
            panic!("SEESAW_PRECISION={name:?}: expected f32, f16, sq8, or pq<m>x<nbits>")
        }),
    }
}

/// Quantized-tier re-rank pool factor for bench indexes
/// (`SEESAW_RERANK_FACTOR` = N ≥ 1, default
/// [`seesaw_vecstore::SQ8_RERANK_FACTOR`]). Shared by the SQ8 and PQ
/// tiers; ignored by full-precision stores.
pub fn bench_rerank_factor() -> usize {
    env_usize("SEESAW_RERANK_FACTOR", seesaw_vecstore::SQ8_RERANK_FACTOR)
}

/// The vector-store backend for bench indexes, selected by environment
/// (`SEESAW_STORE` = `forest` | `exact` | `ivf`, `SEESAW_SHARDS` = N,
/// `SEESAW_PRECISION` = `f32` | `f16` | `sq8` | `pq<m>x<nbits>`,
/// `SEESAW_RERANK_FACTOR` = N) instead of hardcoding one — every
/// harness that builds through [`build_indexes`] runs against
/// whichever backend the caller picks.
///
/// # Panics
/// Panics on an unknown `SEESAW_STORE` or `SEESAW_PRECISION` value
/// (silent fallback would make a typo benchmark the wrong backend).
pub fn bench_store_config() -> StoreConfig {
    let cfg = match std::env::var("SEESAW_STORE") {
        Err(_) => PreprocessConfig::fast().store,
        Ok(name) => match StoreConfig::from_backend_name(&name) {
            // `forest` must mean the same bench-sized forest whether it
            // is spelled out or left as the default, or explicit runs
            // would not be comparable to default ones.
            Some(StoreConfig::RpForest { .. }) => PreprocessConfig::fast().store,
            Some(cfg) => cfg,
            None => panic!("SEESAW_STORE={name:?}: expected forest, exact, or ivf"),
        },
    };
    cfg.with_shards(env_usize("SEESAW_SHARDS", 0))
        .with_precision(bench_precision())
        .with_rerank_factor(bench_rerank_factor())
}

/// The four paper datasets at bench scale, in the paper's column order
/// (LVIS, ObjNet, COCO, BDD). The default scale is 1% of the paper's
/// image counts; `SEESAW_SCALE` multiplies it.
pub fn bench_suite() -> Vec<DatasetSpec> {
    let scale = 0.01 * env_f64("SEESAW_SCALE", 1.0);
    let max_q = env_usize("SEESAW_QUERIES", 40);
    DatasetSpec::paper_suite(scale)
        .into_iter()
        .map(|s| {
            let cap = max_q.min(s.max_queries.max(1));
            s.with_max_queries(cap)
        })
        .collect()
}

/// Which preprocessing artifacts a bench target needs — building only
/// what is used keeps the suite fast.
#[derive(Clone, Copy, Debug, Default)]
pub struct IndexNeeds {
    /// Build the multiscale index.
    pub multiscale: bool,
    /// Build the coarse-only index.
    pub coarse: bool,
    /// Compute `M_D` (DB alignment).
    pub db_matrix: bool,
    /// Keep the patch adjacency (propagation variant).
    pub propagation: bool,
    /// Build the coarse kNN graph (ENS).
    pub ens_graph: bool,
}

impl IndexNeeds {
    /// Everything (Table 6 needs it all).
    pub fn all() -> Self {
        Self {
            multiscale: true,
            coarse: true,
            db_matrix: true,
            propagation: true,
            ens_graph: true,
        }
    }

    /// Zero-shot only: coarse + multiscale stores, no graph artifacts.
    pub fn stores_only() -> Self {
        Self {
            multiscale: true,
            coarse: true,
            ..Self::default()
        }
    }
}

/// A dataset with the indexes a bench target asked for. Indexes come
/// shared (`Arc`) straight from [`Preprocessor::build`], so harnesses
/// can hand them to sessions, services, and threads without copying.
pub struct BuiltDataset {
    /// The generated dataset.
    pub dataset: SyntheticDataset,
    /// Multiscale index (§4.3 representation), if requested.
    pub multiscale: Option<std::sync::Arc<seesaw_core::DatasetIndex>>,
    /// Coarse-only index, if requested.
    pub coarse: Option<std::sync::Arc<seesaw_core::DatasetIndex>>,
}

fn preprocess_config(needs: &IndexNeeds, multiscale: bool) -> PreprocessConfig {
    let mut cfg = PreprocessConfig::fast();
    cfg.store = bench_store_config();
    cfg.multiscale = multiscale;
    cfg.build_db_matrix = needs.db_matrix;
    cfg.build_propagation = needs.propagation;
    cfg.build_coarse_graph = needs.ens_graph;
    // The paper's §4.2 subsampling optimization keeps M_D affordable on
    // multiscale patch sets at larger SEESAW_SCALE values; it only
    // engages above the threshold, so default-scale runs use all
    // vectors when propagation is not simultaneously requested.
    if !needs.propagation {
        cfg.db_matrix_sample = Some(20_000);
    }
    cfg
}

/// Generate each spec and build the requested indexes, logging progress
/// to stderr (bench targets are long-running; silence is unfriendly).
pub fn build_indexes(specs: &[DatasetSpec], needs: IndexNeeds) -> Vec<BuiltDataset> {
    let seed = bench_seed();
    specs
        .iter()
        .map(|spec| {
            eprintln!(
                "[seesaw-bench] generating {} ({} images)…",
                spec.name, spec.n_images
            );
            let dataset = spec.generate(seed);
            let multiscale = needs.multiscale.then(|| {
                eprintln!("[seesaw-bench]   multiscale index…");
                Preprocessor::new(preprocess_config(&needs, true)).build(&dataset)
            });
            let coarse = needs.coarse.then(|| {
                eprintln!("[seesaw-bench]   coarse index…");
                Preprocessor::new(preprocess_config(&needs, false)).build(&dataset)
            });
            BuiltDataset {
                dataset,
                multiscale,
                coarse,
            }
        })
        .collect()
}
