//! Method sweeps over benchmark queries and the hard-subset split.

use seesaw_core::{run_benchmark_query, DatasetIndex, MethodConfig};
use seesaw_dataset::SyntheticDataset;
use seesaw_metrics::BenchmarkProtocol;
use std::sync::Arc;

/// A factory producing a fresh `MethodConfig` per query (methods hold
/// per-query state, so they cannot be shared across queries).
pub type MethodFactory<'a> = &'a dyn Fn(&DatasetIndex, &SyntheticDataset, u32) -> MethodConfig;

/// Run `method` on every benchmark query of the dataset; returns the
/// per-query AP values in query order.
pub fn ap_per_query(
    index: &Arc<DatasetIndex>,
    dataset: &SyntheticDataset,
    method: MethodFactory,
    protocol: &BenchmarkProtocol,
) -> Vec<f64> {
    dataset
        .queries()
        .iter()
        .map(|q| {
            let cfg = method(index, dataset, q.concept);
            run_benchmark_query(index, dataset, q.concept, cfg, protocol).ap
        })
        .collect()
}

/// Mean AP, 0 when empty.
pub fn mean_ap(aps: &[f64]) -> f64 {
    seesaw_metrics::mean(aps)
}

/// Indices of the hard subset: queries whose *zero-shot* AP is below .5
/// (the Fig. 1 / Table 2 definition).
pub fn hard_subset(zero_shot_aps: &[f64]) -> Vec<usize> {
    zero_shot_aps
        .iter()
        .enumerate()
        .filter(|(_, &ap)| ap < 0.5)
        .map(|(i, _)| i)
        .collect()
}

/// Project `aps` onto the hard subset.
pub fn select_hard(aps: &[f64], hard: &[usize]) -> Vec<f64> {
    hard.iter().map(|&i| aps[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hard_subset_selects_below_half() {
        let aps = [0.9, 0.2, 0.5, 0.49];
        assert_eq!(hard_subset(&aps), vec![1, 3]);
        assert_eq!(select_hard(&[1.0, 2.0, 3.0, 4.0], &[1, 3]), vec![2.0, 4.0]);
    }
}
