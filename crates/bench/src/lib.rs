//! Shared harness for the paper-reproduction benchmarks.
//!
//! Every `benches/` target regenerates one table or figure of the paper
//! (see `DESIGN.md` §3 for the index). This library provides the pieces
//! they share: dataset construction at a configurable scale, method
//! sweeps over the benchmark queries, the hard-subset split, and the
//! §5.5 user-time simulator.
//!
//! ## Environment knobs
//!
//! * `SEESAW_SCALE` — multiplies the default dataset scale (default 1.0;
//!   the default scale itself is 1% of the paper's image counts so the
//!   whole suite runs in minutes — set `SEESAW_SCALE=100` for
//!   paper-sized datasets).
//! * `SEESAW_QUERIES` — per-dataset query cap (default 40).
//! * `SEESAW_SEED` — experiment seed (default 7).
//! * `SEESAW_STORE` — vector-store backend: `forest` (default),
//!   `exact`, or `ivf`.
//! * `SEESAW_SHARDS` — shard the store across N parallel workers
//!   (default 0 = unsharded).
//! * `SEESAW_PRECISION` — row-storage precision for the dense-row
//!   backends: `f32` (default), `f16`, or `sq8` (no-op on the RP
//!   forest, which keeps its own f32 layout).

pub mod context;
pub mod experiments;
pub mod usersim;

pub use context::{
    bench_precision, bench_rerank_factor, bench_seed, bench_store_config, bench_suite,
    build_indexes, BuiltDataset, IndexNeeds,
};
pub use experiments::{ap_per_query, hard_subset, mean_ap, select_hard, MethodFactory};
pub use usersim::{simulate_task_time, AnnotationModel, UserSimConfig};

/// Read an f64 environment knob with a default.
pub fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Read a usize environment knob with a default.
pub fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Nearest-rank percentile of an unsorted sample (sorts in place,
/// same unit out as in; NaN on an empty sample). Shared by the
/// latency-reporting harnesses so `BENCH_*.json` artifacts all use
/// the same percentile definition.
pub fn percentile(samples: &mut [f64], p: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    samples.sort_unstable_by(|a, b| a.total_cmp(b));
    let idx = ((samples.len() as f64 * p).ceil() as usize).clamp(1, samples.len()) - 1;
    samples[idx]
}
