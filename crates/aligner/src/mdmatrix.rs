//! Precomputation of the database-alignment matrix
//! `M_D = Xᵀ (D − W) X` (paper §4.2).
//!
//! `M_D` is `d × d` — "its size is only a function of the CLIP embedding
//! dimension … not of dataset size" — and is computed once per dataset:
//! build a kNN graph (NN-descent), weight it with a Gaussian kernel,
//! form the Laplacian, and contract it with the embedding matrix.
//!
//! The paper notes that "using a sample of a few thousand vectors from
//! X_D … produces a very similar M_D"; [`DbMatrixConfig::sample`]
//! implements that optimization (off by default, as in their
//! experiments).

use rand::rngs::StdRng;
use rand::seq::index::sample as index_sample;
use rand::SeedableRng;
use seesaw_knn::{gaussian_adjacency, laplacian, KnnGraph, NnDescentConfig, SigmaRule};
use seesaw_linalg::DenseMatrix;

/// Configuration for [`compute_db_matrix`].
#[derive(Clone, Debug)]
pub struct DbMatrixConfig {
    /// kNN graph degree (paper benchmark: k = 10).
    pub k: usize,
    /// Gaussian bandwidth rule (paper: σ = .05 on CLIP embeddings; the
    /// adaptive median rule transfers across embedding geometries).
    pub sigma: SigmaRule,
    /// Optional subsample size: compute `M_D` from this many vectors
    /// instead of all of them.
    pub sample: Option<usize>,
    /// Normalize by the number of graph edges so `wᵀM_Dw/‖w‖²` is the
    /// *mean* squared score difference across edges. This keeps `λD`
    /// meaningful across dataset sizes (documented deviation: the paper
    /// fixes dataset sizes, so it never needed this).
    pub normalize_by_edges: bool,
    /// NN-descent settings for the graph construction.
    pub nn_descent: NnDescentConfig,
    /// Seed for subsampling.
    pub seed: u64,
}

impl Default for DbMatrixConfig {
    fn default() -> Self {
        Self {
            k: 10,
            sigma: SigmaRule::SelfTuning(1.0),
            sample: None,
            normalize_by_edges: true,
            nn_descent: NnDescentConfig::default(),
            seed: 0x3d,
        }
    }
}

/// Compute `M_D` from a row-major buffer of `n × dim` embeddings.
///
/// Returns the zero matrix when there are too few vectors to form a kNN
/// graph (the DB-alignment term then becomes a no-op, which is the
/// correct degenerate behaviour).
pub fn compute_db_matrix(dim: usize, data: &[f32], cfg: &DbMatrixConfig) -> DenseMatrix {
    assert!(dim > 0, "dimension must be positive");
    assert_eq!(data.len() % dim, 0, "buffer is not a multiple of dim");
    let n = data.len() / dim;

    // Optional subsampling.
    let (owned, n_eff): (Option<Vec<f32>>, usize) = match cfg.sample {
        Some(s) if s < n => {
            let mut rng = StdRng::seed_from_u64(cfg.seed);
            let idx = index_sample(&mut rng, n, s);
            let mut buf = Vec::with_capacity(s * dim);
            for i in idx.iter() {
                buf.extend_from_slice(&data[i * dim..(i + 1) * dim]);
            }
            (Some(buf), s)
        }
        _ => (None, n),
    };
    let view: &[f32] = owned.as_deref().unwrap_or(data);

    if n_eff < 3 || cfg.k == 0 || cfg.k >= n_eff {
        return DenseMatrix::zeros(dim, dim);
    }

    let graph = KnnGraph::nn_descent(dim, view, cfg.k, &cfg.nn_descent);
    let adjacency = gaussian_adjacency(&graph, cfg.sigma);
    let lap = laplacian(&adjacency);
    let x = DenseMatrix::from_vec(n_eff, dim, view.to_vec());
    let mut m = lap.xtax(&x);
    if cfg.normalize_by_edges {
        let n_edges = (adjacency.nnz() / 2).max(1);
        m.scale(1.0 / n_edges as f32);
    }
    // Xᵀ L X is symmetric in exact arithmetic; enforce it so the solver
    // sees a clean quadratic form.
    m.symmetrize();
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use seesaw_linalg::{dot, random_unit_vector};

    /// A dense cluster plus scattered points.
    fn clustered_data(dim: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let center = random_unit_vector(&mut rng, dim);
        let mut data = Vec::new();
        for _ in 0..120 {
            let mut v = center.clone();
            let noise = random_unit_vector(&mut rng, dim);
            for (vi, ni) in v.iter_mut().zip(noise.iter()) {
                *vi += 0.1 * ni;
            }
            seesaw_linalg::normalize(&mut v);
            data.extend_from_slice(&v);
        }
        for _ in 0..120 {
            data.extend_from_slice(&random_unit_vector(&mut rng, dim));
        }
        (data, center)
    }

    #[test]
    fn md_is_symmetric_and_psd_on_random_directions() {
        let (data, _) = clustered_data(12, 1);
        let m = compute_db_matrix(12, &data, &DbMatrixConfig::default());
        assert_eq!(m.max_asymmetry(), 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10 {
            let w = random_unit_vector(&mut rng, 12);
            let q = m.quadratic_form(&w);
            assert!(q >= -1e-4, "Laplacian quadratic form negative: {q}");
        }
    }

    #[test]
    fn quadratic_form_smaller_at_dense_region_center() {
        // The documented property (§4.2): "this term points w toward the
        // center of a dense region instead of its periphery". Scores of
        // a tight cluster vary *second order* around w = center (cos is
        // flat at 0) but *first order* for a rotated w, so the Laplacian
        // quadratic form must prefer the center.
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(3);
        let center = random_unit_vector(&mut rng, dim);
        let mut data = Vec::new();
        for _ in 0..300 {
            let n = random_unit_vector(&mut rng, dim);
            data.extend_from_slice(&seesaw_linalg::rotate_toward(&center, &n, 0.3));
        }
        let m = compute_db_matrix(dim, &data, &DbMatrixConfig::default());
        let q_center = m.quadratic_form(&center);
        let mut q_rotated = 0.0;
        for _ in 0..8 {
            let away = random_unit_vector(&mut rng, dim);
            let w = seesaw_linalg::rotate_toward(&center, &away, 0.8);
            q_rotated += m.quadratic_form(&w) / 8.0;
        }
        assert!(
            q_center < q_rotated,
            "center {q_center} should vary less than periphery {q_rotated}"
        );
    }

    #[test]
    fn subsampled_md_stays_close_to_full_md() {
        // The paper's subsampling optimization must produce "a very
        // similar M_D". Probing the quadratic form along random unit
        // directions, the subsampled matrix must track the full one to
        // within a modest relative error everywhere.
        let (data, _) = clustered_data(8, 5);
        let full = compute_db_matrix(8, &data, &DbMatrixConfig::default());
        let sub = compute_db_matrix(
            8,
            &data,
            &DbMatrixConfig {
                sample: Some(180),
                ..Default::default()
            },
        );
        let mut rng = StdRng::seed_from_u64(6);
        let mut worst = 0.0f32;
        for _ in 0..32 {
            let w = random_unit_vector(&mut rng, 8);
            let qf = full.quadratic_form(&w);
            let qs = sub.quadratic_form(&w);
            let rel = (qf - qs).abs() / qf.abs().max(1e-6);
            worst = worst.max(rel);
        }
        assert!(
            worst < 0.35,
            "subsampled M_D deviates by {worst} in relative terms"
        );
    }

    #[test]
    fn subsampled_md_preserves_dense_center_preference() {
        // The downstream property that matters (§4.2): both the full
        // and the subsampled matrix must agree that the center of a
        // tight cluster varies less than its periphery. Built like
        // `quadratic_form_smaller_at_dense_region_center`, where the
        // probe axis carries real signal.
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(9);
        let center = random_unit_vector(&mut rng, dim);
        let mut data = Vec::new();
        for _ in 0..300 {
            let n = random_unit_vector(&mut rng, dim);
            data.extend_from_slice(&seesaw_linalg::rotate_toward(&center, &n, 0.3));
        }
        let full = compute_db_matrix(dim, &data, &DbMatrixConfig::default());
        let sub = compute_db_matrix(
            dim,
            &data,
            &DbMatrixConfig {
                sample: Some(200),
                ..Default::default()
            },
        );
        for m in [&full, &sub] {
            let q_center = m.quadratic_form(&center);
            let mut q_rotated = 0.0;
            for _ in 0..8 {
                let away = random_unit_vector(&mut rng, dim);
                let w = seesaw_linalg::rotate_toward(&center, &away, 0.8);
                q_rotated += m.quadratic_form(&w) / 8.0;
            }
            assert!(
                q_center < q_rotated,
                "center {q_center} should vary less than periphery {q_rotated}"
            );
        }
    }

    #[test]
    fn tiny_input_yields_zero_matrix() {
        let data = vec![1.0f32, 0.0, 0.0, 1.0];
        let m = compute_db_matrix(2, &data, &DbMatrixConfig::default());
        assert_eq!(m.quadratic_form(&[1.0, 1.0]), 0.0);
    }

    #[test]
    fn constant_direction_scores_zero_on_duplicate_data() {
        // If all points are identical, all edge differences are zero for
        // any w.
        let mut data = Vec::new();
        let mut rng = StdRng::seed_from_u64(7);
        let v = random_unit_vector(&mut rng, 6);
        for _ in 0..50 {
            data.extend_from_slice(&v);
        }
        let m = compute_db_matrix(6, &data, &DbMatrixConfig::default());
        let w = random_unit_vector(&mut rng, 6);
        assert!(m.quadratic_form(&w).abs() < 1e-4);
        // Sanity: scores themselves are nonzero.
        assert!(dot(&w, &v).abs() >= 0.0);
        let _ = rng.gen_range(0..2);
    }
}
