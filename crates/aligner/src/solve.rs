//! Solving for the next query vector (paper §4.4).

use seesaw_linalg::{normalized, DenseMatrix};
use seesaw_optim::{Lbfgs, LbfgsConfig};

use crate::loss::AlignerLoss;

/// Hyperparameters of the aligner.
///
/// The paper's benchmark uses λ = 100, λc = 10, λD = 1000 on 512-d CLIP
/// embeddings with multiscale feedback sets of hundreds of patches. The
/// loss balance depends on the example count and embedding geometry:
/// λ sets the solution norm ‖w*‖ ≈ O(#examples/λ), and the *effective*
/// stiffness of the CLIP anchor is λc/‖w*‖ — with few coarse examples
/// and a large λ, the anchor becomes rigid and feedback is ignored.
/// The defaults here are re-calibrated for this reproduction's
/// synthetic embedding (λ = 1, λc = 1, λD = 100, with the
/// edge-normalized `M_D`); Table 7's invariance claim — AP stable while
/// each λ varies an order of magnitude — is reproduced around these
/// values. See EXPERIMENTS.md.
#[derive(Clone, Debug)]
pub struct AlignerConfig {
    /// `λ` — weight-magnitude penalty.
    pub lambda: f64,
    /// `λc` — CLIP-alignment penalty; 0 disables CLIP alignment.
    pub lambda_c: f64,
    /// `λD` — DB-alignment penalty; 0 disables DB alignment.
    pub lambda_d: f64,
    /// L-BFGS settings ("a few tens of steps").
    pub solver: LbfgsConfig,
}

impl Default for AlignerConfig {
    fn default() -> Self {
        Self {
            lambda: 1.0,
            lambda_c: 1.0,
            lambda_d: 100.0,
            solver: LbfgsConfig {
                max_iters: 60,
                grad_tol: 1e-5,
                ..LbfgsConfig::default()
            },
        }
    }
}

impl AlignerConfig {
    /// CLIP alignment only (the Table 2 "+Query align" row).
    pub fn clip_only() -> Self {
        Self {
            lambda_d: 0.0,
            ..Self::default()
        }
    }

    /// Pure few-shot logistic regression (no alignment terms) — the
    /// Eq. 1 baseline expressed in the same solver.
    pub fn few_shot() -> Self {
        Self {
            lambda_c: 0.0,
            lambda_d: 0.0,
            ..Self::default()
        }
    }
}

/// The result of one alignment solve with solver diagnostics.
#[derive(Clone, Debug)]
pub struct AlignOutcome {
    /// The next unit query vector.
    pub query: Vec<f32>,
    /// L-BFGS iterations used (paper §4.4: "a few tens of steps").
    pub iterations: usize,
    /// Whether the solver reported convergence.
    pub converged: bool,
    /// Final loss value.
    pub loss: f64,
}

/// Owns the per-query alignment state: the original text query `q₀` and
/// the (shared, optional) `M_D` matrix.
#[derive(Clone, Debug)]
pub struct QueryAligner {
    q0: Vec<f32>,
    m_d: Option<DenseMatrix>,
    config: AlignerConfig,
}

impl QueryAligner {
    /// Create an aligner for the text query `q0` (normalized on entry).
    pub fn new(q0: &[f32], config: AlignerConfig) -> Self {
        Self {
            q0: normalized(q0),
            m_d: None,
            config,
        }
    }

    /// Attach a precomputed `M_D` (enables the DB-alignment term).
    pub fn with_db_matrix(mut self, m_d: DenseMatrix) -> Self {
        assert_eq!(m_d.rows(), self.q0.len(), "M_D dimension mismatch");
        assert_eq!(m_d.cols(), self.q0.len(), "M_D must be square");
        self.m_d = Some(m_d);
        self
    }

    /// The original text query.
    pub fn q0(&self) -> &[f32] {
        &self.q0
    }

    /// The active configuration.
    pub fn config(&self) -> &AlignerConfig {
        &self.config
    }

    /// Solve `q_{t+1} = argmin_w L(w)` on the accumulated feedback and
    /// return the next *unit* query vector (paper: "we use the solution
    /// vector as the next query").
    ///
    /// With no feedback at all the solution is `q₀` itself (the CLIP
    /// prior is all the information there is), returned without solving.
    pub fn align(&self, examples: &[&[f32]], labels: &[bool]) -> Vec<f32> {
        self.align_weighted(examples, labels, None)
    }

    /// [`Self::align_weighted`] returning solver diagnostics alongside
    /// the query — used by latency studies and the micro benches to
    /// check the paper's "a few tens of steps" claim directly.
    pub fn align_detailed(
        &self,
        examples: &[&[f32]],
        labels: &[bool],
        weights: Option<&[f32]>,
    ) -> AlignOutcome {
        if examples.is_empty() {
            return AlignOutcome {
                query: self.q0.clone(),
                iterations: 0,
                converged: true,
                loss: 0.0,
            };
        }
        let loss = AlignerLoss {
            examples,
            labels,
            weights,
            q0: &self.q0,
            lambda: self.config.lambda,
            lambda_c: self.config.lambda_c,
            lambda_d: self.config.lambda_d,
            m_d: self.m_d.as_ref(),
        };
        let mut w: Vec<f64> = self.q0.iter().map(|&v| v as f64).collect();
        let outcome = Lbfgs::new(self.config.solver.clone()).minimize(&loss, &mut w);
        let w32: Vec<f32> = w.iter().map(|&v| v as f32).collect();
        let mut query = normalized(&w32);
        if query.iter().any(|v| !v.is_finite()) || query.iter().all(|&v| v == 0.0) {
            query = self.q0.clone();
        }
        AlignOutcome {
            query,
            iterations: outcome.iterations,
            converged: outcome.converged,
            loss: outcome.value,
        }
    }

    /// [`Self::align`] with optional per-example weights (the engine
    /// weights multiscale patches so one image is one unit of
    /// evidence).
    pub fn align_weighted(
        &self,
        examples: &[&[f32]],
        labels: &[bool],
        weights: Option<&[f32]>,
    ) -> Vec<f32> {
        assert_eq!(examples.len(), labels.len(), "example/label mismatch");
        if let Some(w) = weights {
            assert_eq!(w.len(), labels.len(), "weight/label mismatch");
        }
        if examples.is_empty() {
            return self.q0.clone();
        }
        for (i, x) in examples.iter().enumerate() {
            assert_eq!(x.len(), self.q0.len(), "example {i} has wrong dimension");
        }
        let loss = AlignerLoss {
            examples,
            labels,
            weights,
            q0: &self.q0,
            lambda: self.config.lambda,
            lambda_c: self.config.lambda_c,
            lambda_d: self.config.lambda_d,
            m_d: self.m_d.as_ref(),
        };
        // Warm-start at q₀: with small feedback sets the solution stays
        // in its basin, and L-BFGS converges in a few tens of steps.
        let mut w: Vec<f64> = self.q0.iter().map(|&v| v as f64).collect();
        let _outcome = Lbfgs::new(self.config.solver.clone()).minimize(&loss, &mut w);
        let w32: Vec<f32> = w.iter().map(|&v| v as f32).collect();
        let out = normalized(&w32);
        if out.iter().any(|v| !v.is_finite()) || out.iter().all(|&v| v == 0.0) {
            // Defensive fallback: never hand the vector store a broken
            // query.
            return self.q0.clone();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seesaw_linalg::{cosine, dot, l2_norm, random_unit_vector, rotate_toward};

    #[test]
    fn no_feedback_returns_q0() {
        let q0 = vec![0.6f32, 0.8, 0.0];
        let aligner = QueryAligner::new(&q0, AlignerConfig::default());
        assert_eq!(aligner.align(&[], &[]), q0);
    }

    #[test]
    fn output_is_always_unit_norm() {
        let mut rng = StdRng::seed_from_u64(1);
        let q0 = random_unit_vector(&mut rng, 16);
        let x1 = random_unit_vector(&mut rng, 16);
        let x2 = random_unit_vector(&mut rng, 16);
        let aligner = QueryAligner::new(&q0, AlignerConfig::default());
        let q = aligner.align(&[&x1, &x2], &[true, false]);
        assert!((l2_norm(&q) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn feedback_pulls_query_toward_positives() {
        // q0 is rotated 1.0 rad away from the true concept direction;
        // after a few positive examples near the concept, the aligned
        // query must be closer to the concept than q0 was.
        let dim = 32;
        let mut rng = StdRng::seed_from_u64(2);
        let concept = random_unit_vector(&mut rng, dim);
        let away = random_unit_vector(&mut rng, dim);
        let q0 = rotate_toward(&concept, &away, 1.0);
        let positives: Vec<Vec<f32>> = (0..4)
            .map(|_| {
                let n = random_unit_vector(&mut rng, dim);
                rotate_toward(&concept, &n, 0.15)
            })
            .collect();
        let negatives: Vec<Vec<f32>> = (0..4).map(|_| random_unit_vector(&mut rng, dim)).collect();
        let mut examples: Vec<&[f32]> = positives.iter().map(|v| v.as_slice()).collect();
        examples.extend(negatives.iter().map(|v| v.as_slice()));
        let labels = vec![true, true, true, true, false, false, false, false];

        let aligner = QueryAligner::new(
            &q0,
            AlignerConfig {
                lambda: 1.0,
                lambda_c: 2.0,
                lambda_d: 0.0,
                ..AlignerConfig::default()
            },
        );
        let q1 = aligner.align(&examples, &labels);
        assert!(
            cosine(&q1, &concept) > cosine(&q0, &concept) + 0.05,
            "aligned {} vs initial {}",
            cosine(&q1, &concept),
            cosine(&q0, &concept)
        );
    }

    #[test]
    fn huge_lambda_c_pins_query_to_q0() {
        // "A large λc parameter means we ignore the user labels."
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(3);
        let q0 = random_unit_vector(&mut rng, dim);
        // Adversarial feedback: a positive opposite to q0.
        let anti: Vec<f32> = q0.iter().map(|v| -v).collect();
        let aligner = QueryAligner::new(
            &q0,
            AlignerConfig {
                lambda: 1.0,
                lambda_c: 1e6,
                lambda_d: 0.0,
                ..AlignerConfig::default()
            },
        );
        let q1 = aligner.align(&[&anti], &[true]);
        assert!(cosine(&q1, &q0) > 0.99, "cosine {}", cosine(&q1, &q0));
    }

    #[test]
    fn zero_lambda_c_follows_the_data() {
        // "and a small one means we ignore the initial text query."
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(4);
        let q0 = random_unit_vector(&mut rng, dim);
        let target = random_unit_vector(&mut rng, dim);
        let aligner = QueryAligner::new(
            &q0,
            AlignerConfig {
                lambda: 0.5,
                lambda_c: 0.0,
                lambda_d: 0.0,
                ..AlignerConfig::default()
            },
        );
        let q1 = aligner.align(&[&target], &[true]);
        assert!(
            cosine(&q1, &target) > 0.95,
            "should follow the single positive, cosine {}",
            cosine(&q1, &target)
        );
    }

    #[test]
    fn db_alignment_pulls_toward_dense_region_center() {
        // A single tight cluster of unlabeled data; one positive at the
        // cluster's edge. With DB alignment the query should end up
        // closer to the cluster center than without it (§4.2: "this term
        // points w toward the center of a dense region instead of its
        // periphery when either direction explains the few labeled
        // samples equally well").
        let dim = 16;
        let mut rng = StdRng::seed_from_u64(5);
        let center = random_unit_vector(&mut rng, dim);
        let mut data = Vec::new();
        for _ in 0..300 {
            let n = random_unit_vector(&mut rng, dim);
            data.extend_from_slice(&rotate_toward(&center, &n, 0.3));
        }
        let m_d = crate::mdmatrix::compute_db_matrix(
            dim,
            &data,
            &crate::mdmatrix::DbMatrixConfig::default(),
        );

        let edge_pos = rotate_toward(&center, &random_unit_vector(&mut rng, dim), 0.45);
        let q0 = rotate_toward(&center, &random_unit_vector(&mut rng, dim), 0.9);

        let base_cfg = AlignerConfig {
            lambda: 1.0,
            lambda_c: 1.0,
            lambda_d: 0.0,
            ..AlignerConfig::default()
        };
        let with_db_cfg = AlignerConfig {
            lambda_d: 200.0,
            ..base_cfg.clone()
        };
        let without = QueryAligner::new(&q0, base_cfg).align(&[edge_pos.as_slice()], &[true]);
        let with = QueryAligner::new(&q0, with_db_cfg)
            .with_db_matrix(m_d)
            .align(&[edge_pos.as_slice()], &[true]);
        assert!(dot(&with, &without) < 0.99999, "DB term had no effect");
        assert!(
            cosine(&with, &center) > cosine(&without, &center),
            "with {} vs without {}",
            cosine(&with, &center),
            cosine(&without, &center)
        );
    }

    #[test]
    #[should_panic(expected = "M_D dimension mismatch")]
    fn dimension_mismatch_panics() {
        let q0 = vec![1.0f32, 0.0];
        let _ = QueryAligner::new(&q0, AlignerConfig::default())
            .with_db_matrix(DenseMatrix::zeros(3, 3));
    }

    #[test]
    fn align_detailed_converges_in_a_few_tens_of_steps() {
        // The §4.4 claim: "L-BFGS finds the optimal solution in a few
        // tens of steps".
        let dim = 32;
        let mut rng = StdRng::seed_from_u64(6);
        let q0 = random_unit_vector(&mut rng, dim);
        let xs: Vec<Vec<f32>> = (0..40).map(|_| random_unit_vector(&mut rng, dim)).collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let labels: Vec<bool> = (0..40).map(|i| i % 5 == 0).collect();
        let aligner = QueryAligner::new(&q0, AlignerConfig::default());
        let out = aligner.align_detailed(&refs, &labels, None);
        assert!(out.converged, "{out:?}");
        assert!(out.iterations <= 60, "{} iterations", out.iterations);
        assert!((l2_norm(&out.query) - 1.0).abs() < 1e-4);
        assert!(out.loss.is_finite());
        // Must agree with the plain API.
        assert_eq!(out.query, aligner.align(&refs, &labels));
    }

    #[test]
    fn align_detailed_empty_feedback_is_q0() {
        let q0 = vec![1.0f32, 0.0, 0.0];
        let aligner = QueryAligner::new(&q0, AlignerConfig::default());
        let out = aligner.align_detailed(&[], &[], None);
        assert_eq!(out.query, q0);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    fn presets_have_expected_terms() {
        let c = AlignerConfig::clip_only();
        assert_eq!(c.lambda_d, 0.0);
        assert!(c.lambda_c > 0.0);
        let f = AlignerConfig::few_shot();
        assert_eq!(f.lambda_c, 0.0);
        assert_eq!(f.lambda_d, 0.0);
    }
}
