//! The SeeSaw **query aligner** — the paper's primary contribution
//! (§4.1–§4.4).
//!
//! After every feedback round, SeeSaw re-solves
//!
//! ```text
//! q_{t+1} = argmin_w  Σᵢ LogLoss(yᵢ, σ(w·xᵢ))      — fit user feedback
//!                   + λ ‖w‖²                        — but avoid ‖w‖ → ∞
//!                   + λc (1 − w·q₀ / ‖w‖)           — CLIP alignment (§4.1)
//!                   + λD (wᵀ M_D w) / ‖w‖²          — DB alignment  (§4.2)
//! ```
//!
//! where `M_D = Xᵀ (D − W) X` is precomputed once per dataset from the
//! kNN graph (it is `d × d`, *independent of the database size*, which
//! is what keeps per-iteration work sub-linear in N — the paper's
//! interactivity requirement).
//!
//! Modules:
//! * [`loss`] — the four-term loss with analytic gradients (verified
//!   against finite differences in tests);
//! * [`solve`] — the L-BFGS solve producing the next unit query vector;
//! * [`mdmatrix`] — the `M_D` precomputation (with the paper's optional
//!   subsampling optimization).

pub mod loss;
pub mod mdmatrix;
#[cfg(test)]
mod proptests;
pub mod solve;

pub use loss::AlignerLoss;
pub use mdmatrix::{compute_db_matrix, DbMatrixConfig};
pub use solve::{AlignOutcome, AlignerConfig, QueryAligner};
