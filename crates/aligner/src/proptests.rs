//! Property-based tests of the aligner loss and solve.

#![cfg(test)]

use crate::loss::AlignerLoss;
use crate::solve::{AlignerConfig, QueryAligner};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seesaw_linalg::{cosine, l2_norm, random_unit_vector};
use seesaw_optim::{max_gradient_error, Objective};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gradient_matches_finite_differences_for_random_configs(
        seed in 0u64..2000,
        lambda in 0.0f64..20.0,
        lambda_c in 0.0f64..20.0,
        n_examples in 1usize..6,
    ) {
        let dim = 8;
        let mut rng = StdRng::seed_from_u64(seed);
        let q0 = random_unit_vector(&mut rng, dim);
        let xs: Vec<Vec<f32>> = (0..n_examples).map(|_| random_unit_vector(&mut rng, dim)).collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let labels: Vec<bool> = (0..n_examples).map(|i| i % 2 == 0).collect();
        let weights: Vec<f32> = (0..n_examples).map(|i| 0.25 + (i % 3) as f32 * 0.5).collect();
        let loss = AlignerLoss {
            examples: &refs,
            labels: &labels,
            weights: Some(&weights),
            q0: &q0,
            lambda,
            lambda_c,
            lambda_d: 0.0,
            m_d: None,
        };
        let w: Vec<f64> = random_unit_vector(&mut rng, dim).iter().map(|&v| v as f64 * 0.7).collect();
        let err = max_gradient_error(&loss, &w, 1e-6);
        prop_assert!(err < 1e-3, "gradient error {err}");
    }

    #[test]
    fn solution_never_has_higher_loss_than_q0(
        seed in 0u64..1000,
        lambda_c in 0.1f64..10.0,
    ) {
        // The solve warm-starts at q0, so the returned point's loss can
        // never exceed the loss at q0.
        let dim = 12;
        let mut rng = StdRng::seed_from_u64(seed);
        let q0 = random_unit_vector(&mut rng, dim);
        let xs: Vec<Vec<f32>> = (0..4).map(|_| random_unit_vector(&mut rng, dim)).collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let labels = [true, false, true, false];
        let cfg = AlignerConfig { lambda: 1.0, lambda_c, lambda_d: 0.0, ..AlignerConfig::default() };
        let aligner = QueryAligner::new(&q0, cfg.clone());
        let out = aligner.align_detailed(&refs, &labels, None);
        let loss = AlignerLoss {
            examples: &refs,
            labels: &labels,
            weights: None,
            q0: &q0,
            lambda: cfg.lambda,
            lambda_c: cfg.lambda_c,
            lambda_d: 0.0,
            m_d: None,
        };
        let mut g = vec![0.0; dim];
        let w0: Vec<f64> = q0.iter().map(|&v| v as f64).collect();
        let at_q0 = loss.value_grad(&w0, &mut g);
        prop_assert!(out.loss <= at_q0 + 1e-9, "{} > {at_q0}", out.loss);
        prop_assert!((l2_norm(&out.query) - 1.0).abs() < 1e-3);
    }

    #[test]
    fn zero_weight_examples_do_not_influence_the_solution(
        seed in 0u64..1000,
    ) {
        let dim = 10;
        let mut rng = StdRng::seed_from_u64(seed);
        let q0 = random_unit_vector(&mut rng, dim);
        let real = random_unit_vector(&mut rng, dim);
        let ghost = random_unit_vector(&mut rng, dim);
        let aligner = QueryAligner::new(
            &q0,
            AlignerConfig { lambda: 1.0, lambda_c: 1.0, lambda_d: 0.0, ..AlignerConfig::default() },
        );
        let q_with = aligner.align_weighted(
            &[&real, &ghost],
            &[true, false],
            Some(&[1.0, 0.0]),
        );
        let q_without = aligner.align_weighted(&[&real], &[true], Some(&[1.0]));
        prop_assert!(
            cosine(&q_with, &q_without) > 0.9999,
            "ghost example changed the answer: {}",
            cosine(&q_with, &q_without)
        );
    }
}
