//! The four-term aligner loss (paper Table 1 / Eq. 5) with analytic
//! gradients.
//!
//! Norms use the softened `‖w‖ = √(w·w + ε)` so the loss stays smooth at
//! the origin; value and gradient use the *same* softening, so the
//! gradient is exact for the implemented function (finite-difference
//! checked in tests).

use seesaw_linalg::DenseMatrix;
use seesaw_optim::{log1p_exp, sigmoid, Objective};

const NORM_EPS: f64 = 1e-12;

/// The loss `L(w)` over the current feedback set. Borrowed data: build
/// one per solve, cheaply.
pub struct AlignerLoss<'a> {
    /// Feedback examples (patch embeddings), one slice per example.
    pub examples: &'a [&'a [f32]],
    /// Feedback labels (`true` = relevant).
    pub labels: &'a [bool],
    /// Optional per-example weights (default 1). The engine uses these
    /// to make *one annotated image* one unit of evidence regardless of
    /// how many multiscale patches it contributes, so a single set of
    /// (λ, λc, λD) balances identically for coarse and multiscale
    /// indexes.
    pub weights: Option<&'a [f32]>,
    /// The original CLIP text query `q₀` (unit norm).
    pub q0: &'a [f32],
    /// `λ` — magnitude penalty (paper benchmark: 100).
    pub lambda: f64,
    /// `λc` — CLIP-alignment penalty (paper benchmark: 10).
    pub lambda_c: f64,
    /// `λD` — DB-alignment penalty (paper benchmark: 1000).
    pub lambda_d: f64,
    /// The precomputed `M_D` (`d × d`, symmetric); `None` disables the
    /// DB-alignment term.
    pub m_d: Option<&'a DenseMatrix>,
}

impl<'a> AlignerLoss<'a> {
    /// Dimension of the parameter vector.
    pub fn dim(&self) -> usize {
        self.q0.len()
    }
}

impl Objective for AlignerLoss<'_> {
    fn value_grad(&self, w: &[f64], grad: &mut [f64]) -> f64 {
        let d = w.len();
        debug_assert_eq!(d, self.q0.len());
        grad.iter_mut().for_each(|g| *g = 0.0);
        let mut loss = 0.0f64;

        // --- logistic feedback term ---------------------------------
        for (i, (x, &y)) in self.examples.iter().zip(self.labels.iter()).enumerate() {
            let weight = self.weights.map_or(1.0, |ws| ws[i] as f64);
            if weight == 0.0 {
                continue;
            }
            let mut z = 0.0f64;
            for (wi, xi) in w.iter().zip(x.iter()) {
                z += wi * (*xi as f64);
            }
            loss += weight * if y { log1p_exp(-z) } else { log1p_exp(z) };
            let residual = weight * (sigmoid(z) - if y { 1.0 } else { 0.0 });
            for (g, xi) in grad.iter_mut().zip(x.iter()) {
                *g += residual * (*xi as f64);
            }
        }

        // --- λ‖w‖² ---------------------------------------------------
        let mut w_sq = 0.0f64;
        for wi in w {
            w_sq += wi * wi;
        }
        loss += self.lambda * w_sq;
        for (g, wi) in grad.iter_mut().zip(w.iter()) {
            *g += 2.0 * self.lambda * wi;
        }

        let norm = (w_sq + NORM_EPS).sqrt();

        // --- λc (1 − w·q₀/‖w‖) — CLIP alignment ----------------------
        if self.lambda_c != 0.0 {
            let mut w_dot_q0 = 0.0f64;
            for (wi, qi) in w.iter().zip(self.q0.iter()) {
                w_dot_q0 += wi * (*qi as f64);
            }
            let cos = w_dot_q0 / norm;
            loss += self.lambda_c * (1.0 - cos);
            // ∇cos = q₀/‖w‖ − (w·q₀)·w/‖w‖³
            let n3 = norm * norm * norm;
            for i in 0..d {
                let dcos = (self.q0[i] as f64) / norm - w_dot_q0 * w[i] / n3;
                grad[i] -= self.lambda_c * dcos;
            }
        }

        // --- λD (wᵀ M w)/‖w‖² — DB alignment -------------------------
        if self.lambda_d != 0.0 {
            if let Some(m) = self.m_d {
                debug_assert_eq!(m.rows(), d);
                // mw = M·w (M is symmetric).
                let mut mw = vec![0.0f64; d];
                for (i, mwi) in mw.iter_mut().enumerate() {
                    let row = m.row(i);
                    let mut acc = 0.0f64;
                    for (rj, wj) in row.iter().zip(w.iter()) {
                        acc += (*rj as f64) * wj;
                    }
                    *mwi = acc;
                }
                let mut w_m_w = 0.0f64;
                for (wi, mwi) in w.iter().zip(mw.iter()) {
                    w_m_w += wi * mwi;
                }
                let n2 = norm * norm;
                loss += self.lambda_d * w_m_w / n2;
                // ∇ = 2Mw/‖w‖² − 2(wᵀMw)·w/‖w‖⁴
                let n4 = n2 * n2;
                for i in 0..d {
                    grad[i] += self.lambda_d * (2.0 * mw[i] / n2 - 2.0 * w_m_w * w[i] / n4);
                }
            }
        }

        loss
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seesaw_linalg::random_unit_vector;
    use seesaw_optim::max_gradient_error;

    fn random_psd(dim: usize, seed: u64) -> DenseMatrix {
        // AᵀA is symmetric PSD, like a real M_D.
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = DenseMatrix::zeros(dim, dim);
        for i in 0..dim {
            let row = random_unit_vector(&mut rng, dim);
            a.row_mut(i).copy_from_slice(&row);
        }
        let mut m = DenseMatrix::zeros(dim, dim);
        for i in 0..dim {
            for j in 0..dim {
                let mut acc = 0.0;
                for k in 0..dim {
                    acc += a.get(k, i) * a.get(k, j);
                }
                m.set(i, j, acc);
            }
        }
        m
    }

    #[test]
    fn gradient_matches_finite_differences_full_loss() {
        let dim = 6;
        let mut rng = StdRng::seed_from_u64(1);
        let q0 = random_unit_vector(&mut rng, dim);
        let x1 = random_unit_vector(&mut rng, dim);
        let x2 = random_unit_vector(&mut rng, dim);
        let m = random_psd(dim, 2);
        let examples: Vec<&[f32]> = vec![&x1, &x2];
        let labels = vec![true, false];
        let loss = AlignerLoss {
            examples: &examples,
            weights: None,
            labels: &labels,
            q0: &q0,
            lambda: 3.0,
            lambda_c: 5.0,
            lambda_d: 7.0,
            m_d: Some(&m),
        };
        let w: Vec<f64> = random_unit_vector(&mut rng, dim)
            .iter()
            .map(|&v| v as f64 * 0.8)
            .collect();
        let err = max_gradient_error(&loss, &w, 1e-6);
        assert!(err < 1e-4, "gradient error {err}");
    }

    #[test]
    fn gradient_ok_without_db_term() {
        let dim = 5;
        let mut rng = StdRng::seed_from_u64(3);
        let q0 = random_unit_vector(&mut rng, dim);
        let x = random_unit_vector(&mut rng, dim);
        let examples: Vec<&[f32]> = vec![&x];
        let labels = vec![true];
        let loss = AlignerLoss {
            examples: &examples,
            weights: None,
            labels: &labels,
            q0: &q0,
            lambda: 1.0,
            lambda_c: 2.0,
            lambda_d: 0.0,
            m_d: None,
        };
        let w = vec![0.2f64, -0.1, 0.4, 0.05, -0.3];
        let err = max_gradient_error(&loss, &w, 1e-6);
        assert!(err < 1e-5, "gradient error {err}");
    }

    #[test]
    fn loss_at_q0_with_no_feedback_is_regularization_only() {
        let dim = 4;
        let mut rng = StdRng::seed_from_u64(4);
        let q0 = random_unit_vector(&mut rng, dim);
        let loss = AlignerLoss {
            examples: &[],
            labels: &[],
            weights: None,
            q0: &q0,
            lambda: 2.0,
            lambda_c: 10.0,
            lambda_d: 0.0,
            m_d: None,
        };
        let w: Vec<f64> = q0.iter().map(|&v| v as f64).collect();
        let mut g = vec![0.0; dim];
        let v = loss.value_grad(&w, &mut g);
        // ‖q0‖ = 1 → λ·1 + λc·(1−1) = λ.
        assert!((v - 2.0).abs() < 1e-6, "value {v}");
    }

    #[test]
    fn clip_term_prefers_alignment_with_q0() {
        let dim = 4;
        let q0 = vec![1.0f32, 0.0, 0.0, 0.0];
        let loss = AlignerLoss {
            examples: &[],
            labels: &[],
            weights: None,
            q0: &q0,
            lambda: 0.0,
            lambda_c: 1.0,
            lambda_d: 0.0,
            m_d: None,
        };
        let aligned = vec![1.0f64, 0.0, 0.0, 0.0];
        let misaligned = vec![0.0f64, 1.0, 0.0, 0.0];
        let mut g = vec![0.0; dim];
        assert!(loss.value_grad(&aligned, &mut g) < loss.value_grad(&misaligned, &mut g));
    }

    #[test]
    fn db_term_is_scale_invariant() {
        // (wᵀMw)/‖w‖² must not change when w is rescaled.
        let dim = 5;
        let m = random_psd(dim, 9);
        let q0 = vec![0.0f32; dim];
        let loss = AlignerLoss {
            examples: &[],
            labels: &[],
            weights: None,
            q0: &q0,
            lambda: 0.0,
            lambda_c: 0.0,
            lambda_d: 1.0,
            m_d: Some(&m),
        };
        let w1 = vec![0.3f64, -0.2, 0.5, 0.1, 0.7];
        let w2: Vec<f64> = w1.iter().map(|v| v * 10.0).collect();
        let mut g = vec![0.0; dim];
        let v1 = loss.value_grad(&w1, &mut g);
        let v2 = loss.value_grad(&w2, &mut g);
        assert!((v1 - v2).abs() < 1e-6, "{v1} vs {v2}");
    }
}
