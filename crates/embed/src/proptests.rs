//! Property-based tests for the synthetic embedding model.

#![cfg(test)]

use crate::{ConceptSpec, EmbedConfig, EmbeddingModel, ObjectPresence, PatchContent};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use seesaw_linalg::{cosine, l2_norm};

fn model(n_concepts: usize, jitter: f32, seed: u64) -> EmbeddingModel {
    EmbeddingModel::build(&EmbedConfig {
        dim: 48,
        concepts: vec![
            ConceptSpec {
                deficit_angle: 0.4,
                modes: 2,
                mode_spread: 0.5
            };
            n_concepts
        ],
        contexts: 3,
        noise_sigma: 0.1,
        instance_jitter: jitter,
        clutter_strength: 0.8,
        salience: 0.5,
        seed,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn patch_embeddings_are_always_unit(
        n_objects in 0usize..5,
        context in 0u32..3,
        clutter in 0.0f32..1.0,
        seed in 0u64..500,
    ) {
        let m = model(6, 0.3, 11);
        let mut rng = StdRng::seed_from_u64(seed);
        let content = PatchContent {
            objects: (0..n_objects)
                .map(|i| ObjectPresence {
                    concept: (i % 6) as u32,
                    mode: (i % 2) as u32,
                    instance: i as u32,
                    share: 1.0 / (n_objects.max(1) as f32),
                })
                .collect(),
            context,
            clutter,
        };
        let v = m.embed_patch(&content, &mut rng);
        prop_assert!((l2_norm(&v) - 1.0).abs() < 1e-3);
        prop_assert!(v.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn text_embeddings_are_unit_and_deterministic(c in 0u32..6, seed in 0u64..100) {
        let m = model(6, 0.3, seed);
        let a = m.embed_text(c);
        let b = m.embed_text(c);
        prop_assert_eq!(a.clone(), b);
        prop_assert!((l2_norm(&a) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn instance_jitter_angle_is_exact(
        c in 0u32..6,
        inst in 0u32..50,
        jitter in 0.05f32..1.0,
    ) {
        let m = model(6, jitter, 17);
        let dir = m.instance_direction(c, 0, inst);
        let base = m.mode_direction(c, 0);
        let angle = seesaw_linalg::dot(&dir, base).clamp(-1.0, 1.0).acos();
        prop_assert!((angle - jitter).abs() < 0.02, "asked {jitter} got {angle}");
    }

    #[test]
    fn instances_are_deterministic_and_distinct(c in 0u32..6) {
        let m = model(6, 0.45, 23);
        let a = m.instance_direction(c, 0, 1);
        let b = m.instance_direction(c, 0, 1);
        prop_assert_eq!(a.clone(), b);
        let other = m.instance_direction(c, 0, 2);
        prop_assert!(cosine(&a, &other) < 0.9999, "instances must differ");
    }
}
