//! The embedding model itself: text tower + image tower over a shared
//! unit sphere.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seesaw_linalg::{
    add_scaled, normalize, random_unit_vector, rotate_toward, standard_normal, DenseMatrix,
};

use crate::{ConceptId, PatchContent};

/// Per-concept difficulty knobs, chosen by the dataset presets.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConceptSpec {
    /// Rotation (radians) of the text embedding away from the concept's
    /// latent direction — the *alignment deficit* of Fig. 2a. `0` means a
    /// perfectly aligned query; `≈ π/2` means the text query points at
    /// the confuser concept instead.
    pub deficit_angle: f32,
    /// Number of image-embedding modes — `1` for tightly clustered
    /// concepts; more modes create the *locality deficit* of Fig. 2b.
    pub modes: u32,
    /// Angular spread (radians) of the modes around the latent direction.
    pub mode_spread: f32,
}

impl Default for ConceptSpec {
    fn default() -> Self {
        Self {
            deficit_angle: 0.2,
            modes: 1,
            mode_spread: 0.0,
        }
    }
}

/// Model-wide configuration.
#[derive(Clone, Debug)]
pub struct EmbedConfig {
    /// Embedding dimension (CLIP uses 512; smaller is fine for tests).
    pub dim: usize,
    /// Per-concept difficulty specs; the vocabulary size is their count.
    pub concepts: Vec<ConceptSpec>,
    /// Number of background *contexts* (scene types).
    pub contexts: usize,
    /// Isotropic per-patch noise magnitude (relative to the unit signal).
    pub noise_sigma: f32,
    /// Per-instance jitter angle (radians): every object instance is
    /// rotated away from its mode direction by this fixed angle in a
    /// deterministic instance-specific direction. Keeps concept
    /// locality high (ideal vectors still work) while making any single
    /// instance an imperfect query.
    pub instance_jitter: f32,
    /// Weight multiplier of the background direction inside a patch.
    pub clutter_strength: f32,
    /// Salience exponent: object weight = share^salience. Values < 1
    /// mimic CLIP's tendency to over-represent salient objects relative
    /// to their pixel area.
    pub salience: f32,
    /// RNG seed for the latent directions.
    pub seed: u64,
}

impl EmbedConfig {
    /// A small, easy configuration for unit tests.
    pub fn test_config(n_concepts: usize) -> Self {
        Self {
            dim: 32,
            concepts: vec![ConceptSpec::default(); n_concepts],
            contexts: 4,
            noise_sigma: 0.1,
            instance_jitter: 0.0,
            clutter_strength: 1.0,
            salience: 0.5,
            seed: 42,
        }
    }
}

/// The deterministic synthetic visual-semantic embedding model.
///
/// See the crate docs for the generative story. All outputs are unit
/// vectors of dimension [`EmbeddingModel::dim`].
#[derive(Clone, Debug)]
pub struct EmbeddingModel {
    dim: usize,
    specs: Vec<ConceptSpec>,
    /// Latent concept directions, one row per concept.
    concept_dirs: DenseMatrix,
    /// Flattened mode directions with per-concept offsets.
    mode_dirs: DenseMatrix,
    mode_offsets: Vec<u32>,
    /// The confuser concept each text query drifts toward.
    confusers: Vec<ConceptId>,
    /// Background context directions.
    context_dirs: DenseMatrix,
    noise_sigma: f32,
    instance_jitter: f32,
    clutter_strength: f32,
    salience: f32,
    seed: u64,
}

impl EmbeddingModel {
    /// Build the latent geometry from a configuration.
    ///
    /// # Panics
    /// Panics when the vocabulary is empty or `dim == 0`.
    pub fn build(cfg: &EmbedConfig) -> Self {
        assert!(!cfg.concepts.is_empty(), "vocabulary must be non-empty");
        assert!(cfg.dim > 0, "embedding dimension must be positive");
        let n = cfg.concepts.len();
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        let mut concept_rows = Vec::with_capacity(n * cfg.dim);
        for _ in 0..n {
            concept_rows.extend_from_slice(&random_unit_vector(&mut rng, cfg.dim));
        }
        let concept_dirs = DenseMatrix::from_vec(n, cfg.dim, concept_rows);

        // Confuser assignment: a deterministic "nearby in vocabulary
        // order" choice, never the concept itself. Using a random other
        // concept makes the misaligned query retrieve real distractors.
        let confusers: Vec<ConceptId> = (0..n)
            .map(|c| {
                if n == 1 {
                    0
                } else {
                    let mut pick = rng.gen_range(0..n - 1) as u32;
                    if pick >= c as u32 {
                        pick += 1;
                    }
                    pick
                }
            })
            .collect();

        // Locality modes: mode 0 is the latent direction itself; extra
        // modes are spread around it by `mode_spread` radians.
        let mut mode_rows: Vec<f32> = Vec::new();
        let mut mode_offsets = Vec::with_capacity(n + 1);
        mode_offsets.push(0u32);
        for (c, spec) in cfg.concepts.iter().enumerate() {
            let base = concept_dirs.row(c);
            let modes = spec.modes.max(1);
            for m in 0..modes {
                if m == 0 && spec.mode_spread == 0.0 {
                    mode_rows.extend_from_slice(base);
                } else {
                    let away = random_unit_vector(&mut rng, cfg.dim);
                    let dir = rotate_toward(base, &away, spec.mode_spread);
                    mode_rows.extend_from_slice(&dir);
                }
            }
            mode_offsets.push(mode_offsets.last().unwrap() + modes);
        }
        let total_modes = *mode_offsets.last().unwrap() as usize;
        let mode_dirs = DenseMatrix::from_vec(total_modes, cfg.dim, mode_rows);

        let mut context_rows = Vec::with_capacity(cfg.contexts.max(1) * cfg.dim);
        for _ in 0..cfg.contexts.max(1) {
            context_rows.extend_from_slice(&random_unit_vector(&mut rng, cfg.dim));
        }
        let context_dirs = DenseMatrix::from_vec(cfg.contexts.max(1), cfg.dim, context_rows);

        Self {
            dim: cfg.dim,
            specs: cfg.concepts.clone(),
            concept_dirs,
            mode_dirs,
            mode_offsets,
            confusers,
            context_dirs,
            noise_sigma: cfg.noise_sigma,
            instance_jitter: cfg.instance_jitter,
            clutter_strength: cfg.clutter_strength,
            salience: cfg.salience,
            seed: cfg.seed,
        }
    }

    /// Embedding dimension.
    #[inline]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Vocabulary size.
    #[inline]
    pub fn n_concepts(&self) -> usize {
        self.specs.len()
    }

    /// Number of background contexts.
    #[inline]
    pub fn n_contexts(&self) -> usize {
        self.context_dirs.rows()
    }

    /// Number of locality modes of `concept`.
    #[inline]
    pub fn n_modes(&self, concept: ConceptId) -> u32 {
        self.mode_offsets[concept as usize + 1] - self.mode_offsets[concept as usize]
    }

    /// The difficulty spec of `concept`.
    #[inline]
    pub fn spec(&self, concept: ConceptId) -> &ConceptSpec {
        &self.specs[concept as usize]
    }

    /// The concept a misaligned text query for `concept` drifts toward.
    #[inline]
    pub fn confuser(&self, concept: ConceptId) -> ConceptId {
        self.confusers[concept as usize]
    }

    /// Latent (ideal) direction of a concept — what Fig. 4 calls the
    /// neighbourhood of the *ideal query vector*. Not available to search
    /// methods; exposed for experiments and tests.
    #[inline]
    pub fn concept_direction(&self, concept: ConceptId) -> &[f32] {
        self.concept_dirs.row(concept as usize)
    }

    /// Direction of a specific locality mode.
    #[inline]
    pub fn mode_direction(&self, concept: ConceptId, mode: u32) -> &[f32] {
        let off = self.mode_offsets[concept as usize];
        let n = self.n_modes(concept);
        self.mode_dirs.row((off + mode.min(n - 1)) as usize)
    }

    /// **Text tower**: embed the query string for `concept` (the paper's
    /// `CLIP.embed_string`, Listing 1 line 2). Deterministic; the
    /// alignment deficit rotates it toward the confuser concept.
    pub fn embed_text(&self, concept: ConceptId) -> Vec<f32> {
        let base = self.concept_dirs.row(concept as usize);
        let confuser = self.concept_dirs.row(self.confuser(concept) as usize);
        let spec = &self.specs[concept as usize];
        rotate_toward(base, confuser, spec.deficit_angle)
    }

    /// The deterministic embedding direction of one object *instance*:
    /// its mode direction rotated by the model's instance jitter in an
    /// instance-specific direction.
    pub fn instance_direction(&self, concept: ConceptId, mode: u32, instance: u32) -> Vec<f32> {
        let base = self.mode_direction(concept, mode);
        if self.instance_jitter <= 0.0 {
            return base.to_vec();
        }
        let mut h = self.seed ^ 0x51ce_5eed;
        for v in [concept as u64, mode as u64, instance as u64] {
            h ^= v.wrapping_add(0x9e37_79b9_7f4a_7c15);
            h = h.rotate_left(27).wrapping_mul(0x1000_0000_01b3);
        }
        let mut jrng = StdRng::seed_from_u64(h);
        let away = random_unit_vector(&mut jrng, self.dim);
        rotate_toward(base, &away, self.instance_jitter)
    }

    /// **Image tower**: embed one patch. The caller provides the RNG so
    /// preprocessing can use a per-image seeded stream and stay
    /// deterministic and parallelizable.
    pub fn embed_patch<R: Rng + ?Sized>(&self, content: &PatchContent, rng: &mut R) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        for obj in &content.objects {
            let weight = obj.share.clamp(0.0, 1.0).powf(self.salience);
            if weight <= 0.0 {
                continue;
            }
            let dir = self.instance_direction(obj.concept, obj.mode, obj.instance);
            add_scaled(&mut acc, weight, &dir);
        }
        let clutter_w = content.clutter.clamp(0.0, 1.0).powf(self.salience) * self.clutter_strength;
        if clutter_w > 0.0 {
            let ctx = self
                .context_dirs
                .row(content.context as usize % self.context_dirs.rows());
            add_scaled(&mut acc, clutter_w, ctx);
        }
        if self.noise_sigma > 0.0 {
            // Isotropic Gaussian noise with expected norm ≈ noise_sigma.
            let per_axis = self.noise_sigma / (self.dim as f32).sqrt();
            for a in acc.iter_mut() {
                *a += per_axis * standard_normal(rng);
            }
        }
        normalize(&mut acc);
        if acc.iter().all(|&v| v == 0.0) {
            // Pathological empty content with zero noise: return the
            // context direction so the output is still a unit vector.
            return self
                .context_dirs
                .row(content.context as usize % self.context_dirs.rows())
                .to_vec();
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ObjectPresence;
    use seesaw_linalg::{cosine, dot, l2_norm};

    fn model_with(specs: Vec<ConceptSpec>) -> EmbeddingModel {
        EmbeddingModel::build(&EmbedConfig {
            dim: 64,
            concepts: specs,
            contexts: 3,
            noise_sigma: 0.1,
            instance_jitter: 0.0,
            clutter_strength: 1.0,
            salience: 0.5,
            seed: 9,
        })
    }

    fn patch(concept: ConceptId, share: f32) -> PatchContent {
        PatchContent {
            objects: vec![ObjectPresence {
                concept,
                mode: 0,
                instance: 0,
                share,
            }],
            context: 0,
            clutter: 1.0 - share,
        }
    }

    #[test]
    fn text_embedding_is_unit_and_deterministic() {
        let m = model_with(vec![ConceptSpec::default(); 5]);
        let a = m.embed_text(2);
        let b = m.embed_text(2);
        assert_eq!(a, b);
        assert!((l2_norm(&a) - 1.0).abs() < 1e-5);
    }

    #[test]
    fn zero_deficit_text_equals_concept_direction() {
        let m = model_with(vec![
            ConceptSpec {
                deficit_angle: 0.0,
                modes: 1,
                mode_spread: 0.0
            };
            3
        ]);
        let t = m.embed_text(1);
        assert!(cosine(&t, m.concept_direction(1)) > 0.9999);
    }

    #[test]
    fn deficit_angle_is_realized() {
        for angle in [0.3f32, 0.8, 1.2] {
            let m = model_with(vec![
                ConceptSpec {
                    deficit_angle: angle,
                    modes: 1,
                    mode_spread: 0.0
                };
                6
            ]);
            let t = m.embed_text(0);
            let got = dot(&t, m.concept_direction(0)).clamp(-1.0, 1.0).acos();
            assert!((got - angle).abs() < 0.02, "wanted {angle} got {got}");
        }
    }

    #[test]
    fn misaligned_text_points_toward_confuser() {
        let m = model_with(vec![
            ConceptSpec {
                deficit_angle: 1.4,
                modes: 1,
                mode_spread: 0.0
            };
            8
        ]);
        let t = m.embed_text(3);
        let confuser = m.confuser(3);
        assert_ne!(confuser, 3);
        let cos_self = cosine(&t, m.concept_direction(3));
        let cos_conf = cosine(&t, m.concept_direction(confuser));
        assert!(
            cos_conf > cos_self,
            "query should align more with confuser ({cos_conf} vs {cos_self})"
        );
    }

    #[test]
    fn patch_embeddings_are_unit_norm() {
        let m = model_with(vec![ConceptSpec::default(); 4]);
        let mut rng = StdRng::seed_from_u64(5);
        for share in [0.0f32, 0.2, 1.0] {
            let v = m.embed_patch(&patch(0, share), &mut rng);
            assert!((l2_norm(&v) - 1.0).abs() < 1e-4, "share {share}");
        }
    }

    #[test]
    fn dominant_object_pulls_embedding_toward_concept() {
        let m = model_with(vec![ConceptSpec::default(); 4]);
        let mut rng = StdRng::seed_from_u64(5);
        let big = m.embed_patch(&patch(1, 0.9), &mut rng);
        let small = m.embed_patch(&patch(1, 0.02), &mut rng);
        let cos_big = cosine(&big, m.concept_direction(1));
        let cos_small = cosine(&small, m.concept_direction(1));
        assert!(
            cos_big > cos_small + 0.2,
            "big {cos_big} should beat small {cos_small}"
        );
    }

    #[test]
    fn small_object_dilution_motivates_multiscale() {
        // A tiny object in a full image (coarse embedding) scores much
        // worse against the true concept than the same object filling a
        // tile — this is the §4.3 motivation.
        let m = model_with(vec![ConceptSpec::default(); 4]);
        let mut rng = StdRng::seed_from_u64(6);
        let coarse = m.embed_patch(&patch(2, 0.01), &mut rng);
        let tile = m.embed_patch(&patch(2, 0.6), &mut rng);
        let q = m.embed_text(2);
        assert!(dot(&q, &tile) > dot(&q, &coarse) + 0.1);
    }

    #[test]
    fn locality_modes_spread_the_cluster() {
        let tight = model_with(vec![
            ConceptSpec {
                deficit_angle: 0.1,
                modes: 1,
                mode_spread: 0.0
            };
            3
        ]);
        let diffuse = model_with(vec![
            ConceptSpec {
                deficit_angle: 0.1,
                modes: 3,
                mode_spread: 1.2
            };
            3
        ]);
        assert_eq!(tight.n_modes(0), 1);
        assert_eq!(diffuse.n_modes(0), 3);
        // Modes of the diffuse concept disagree with each other.
        let m0 = diffuse.mode_direction(0, 0);
        let m2 = diffuse.mode_direction(0, 2);
        assert!(cosine(m0, m2) < 0.9);
    }

    #[test]
    fn contexts_are_distinct_directions() {
        let m = model_with(vec![ConceptSpec::default(); 2]);
        let mut rng = StdRng::seed_from_u64(1);
        let a = m.embed_patch(&PatchContent::background(0), &mut rng);
        let b = m.embed_patch(&PatchContent::background(1), &mut rng);
        assert!(cosine(&a, &b) < 0.5, "contexts should differ");
    }

    #[test]
    fn empty_content_zero_noise_still_unit() {
        let m = EmbeddingModel::build(&EmbedConfig {
            dim: 16,
            concepts: vec![ConceptSpec::default()],
            contexts: 1,
            noise_sigma: 0.0,
            instance_jitter: 0.0,
            clutter_strength: 0.0,
            seed: 3,
            salience: 0.5,
        });
        let mut rng = StdRng::seed_from_u64(0);
        let v = m.embed_patch(
            &PatchContent {
                objects: vec![],
                context: 0,
                clutter: 0.0,
            },
            &mut rng,
        );
        assert!((l2_norm(&v) - 1.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_vocabulary_panics() {
        let _ = EmbeddingModel::build(&EmbedConfig {
            dim: 8,
            concepts: vec![],
            contexts: 1,
            noise_sigma: 0.0,
            instance_jitter: 0.0,
            clutter_strength: 1.0,
            salience: 1.0,
            seed: 0,
        });
    }

    use rand::rngs::StdRng;
    use rand::SeedableRng;
}
