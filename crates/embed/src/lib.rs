//! A synthetic visual-semantic embedding model — the CLIP substitute.
//!
//! The real SeeSaw uses CLIP (§2.1) to map text and image patches onto a
//! shared 512-d unit sphere. SeeSaw's algorithms consume nothing but that
//! geometry: unit vectors, inner products, and the two failure modes the
//! paper diagrams in Figure 2 —
//!
//! * **alignment deficit** (Fig. 2a): the text embedding of a concept
//!   points away from the cluster of its image embeddings;
//! * **locality deficit** (Fig. 2b): the image embeddings of a concept
//!   are not tightly clustered.
//!
//! This crate implements a generative model with both failure modes as
//! explicit, per-concept parameters:
//!
//! * every concept has a latent unit direction; concepts with locality
//!   deficits get several *modes* spread around that direction;
//! * an image patch embeds to the normalized, salience-weighted mixture
//!   of the directions of the objects it contains, plus a background
//!   *context* direction and isotropic noise;
//! * the text embedding of a concept is its latent direction rotated by
//!   the concept's *deficit angle* toward a specific **confuser**
//!   concept, so a poorly aligned query really does retrieve images of
//!   something else — exactly the "wheelchair query needs >100 images"
//!   behaviour the paper reports on BDD.
//!
//! Everything is deterministic given the seed, so datasets, indexes and
//! experiments are reproducible.

pub mod content;
pub mod model;
#[cfg(test)]
mod proptests;

pub use content::{ObjectPresence, PatchContent};
pub use model::{ConceptSpec, EmbedConfig, EmbeddingModel};

/// Identifier of a concept (a searchable category) in the vocabulary.
pub type ConceptId = u32;
