//! What a patch *contains* — the input to the image tower.
//!
//! The dataset crate describes images as object layouts; the core crate's
//! multiscale tiler intersects tiles with objects and produces a
//! [`PatchContent`] per tile. Only then does the embedding model turn the
//! content into a vector, mirroring how real pixels only matter to CLIP
//! through what is visible inside the crop.

use crate::ConceptId;

/// One object (partially) visible inside a patch.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ObjectPresence {
    /// The object's category.
    pub concept: ConceptId,
    /// Which locality mode of the category this instance belongs to
    /// (always 0 for tightly clustered concepts).
    pub mode: u32,
    /// Globally unique instance id. Each physical object carries a
    /// deterministic *instance jitter* — its own idiosyncratic offset
    /// from the category direction (pose, texture, co-occurring
    /// context) — shared by every tile that sees it. This is what makes
    /// a single positive example an imperfect query, the generalization
    /// gap that few-shot learning suffers from (§3.2).
    pub instance: u32,
    /// Fraction of the patch area covered by the object, in `[0, 1]`.
    pub share: f32,
}

/// Everything visible inside one patch (a multiscale tile or a whole
/// image).
#[derive(Clone, Debug, PartialEq)]
pub struct PatchContent {
    /// Visible objects with their area shares.
    pub objects: Vec<ObjectPresence>,
    /// Which background context the parent image belongs to (street,
    /// indoor scene, …). Contexts give non-relevant patches coherent
    /// structure instead of pure noise.
    pub context: u32,
    /// Fraction of the patch that is background, in `[0, 1]`.
    pub clutter: f32,
}

impl PatchContent {
    /// A patch showing only background.
    pub fn background(context: u32) -> Self {
        Self {
            objects: Vec::new(),
            context,
            clutter: 1.0,
        }
    }

    /// Total object area share (diagnostics; can exceed 1 when objects
    /// overlap).
    pub fn object_share(&self) -> f32 {
        self.objects.iter().map(|o| o.share).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn background_patch_has_no_objects() {
        let p = PatchContent::background(3);
        assert!(p.objects.is_empty());
        assert_eq!(p.clutter, 1.0);
        assert_eq!(p.context, 3);
        assert_eq!(p.object_share(), 0.0);
    }

    #[test]
    fn object_share_sums() {
        let p = PatchContent {
            objects: vec![
                ObjectPresence {
                    concept: 0,
                    mode: 0,
                    instance: 0,
                    share: 0.25,
                },
                ObjectPresence {
                    concept: 1,
                    mode: 0,
                    instance: 0,
                    share: 0.5,
                },
            ],
            context: 0,
            clutter: 0.25,
        };
        assert!((p.object_share() - 0.75).abs() < 1e-6);
    }
}
