//! A small blocking client for the line protocol — the other end of
//! [`crate::Server`], used by the integration tests, the
//! `serve_throughput` bench, and the `search_server` example.

use std::fmt;
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use seesaw_core::protocol::{ErrorCode, MethodSpec, ProtocolError, Request, Response};
use seesaw_core::{BBox, Batch, ImageId};

/// Why a [`Client`] call failed.
#[derive(Debug)]
pub enum ClientError {
    /// The socket failed (connect, write, read, or server hung up).
    Io(std::io::Error),
    /// The server's reply line did not decode.
    Protocol(ProtocolError),
    /// The server answered with a protocol-level error.
    Server {
        /// Machine-readable failure class.
        code: ErrorCode,
        /// Human-readable explanation from the server.
        message: String,
    },
    /// The reply decoded but was the wrong variant for the request
    /// (a server bug or a desynchronized connection).
    UnexpectedReply(String),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "transport error: {e}"),
            Self::Protocol(e) => write!(f, "bad reply: {e}"),
            Self::Server { code, message } => {
                write!(f, "server error ({}): {message}", code.name())
            }
            Self::UnexpectedReply(reply) => write!(f, "unexpected reply: {reply}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e)
    }
}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        Self::Protocol(e)
    }
}

/// A blocking connection to a [`crate::Server`].
///
/// The lockstep helpers ([`Client::call`] and the typed methods below)
/// do one request line out, one response line back. The split-phase
/// half ([`Client::send`]/[`Client::recv`], or [`Client::pipeline`]
/// over a whole slice) exploits the server's request pipelining: many
/// requests go out back-to-back and the responses come back in request
/// order, so a burst costs one network round trip instead of one per
/// request.
pub struct Client {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    /// Connect to a running server.
    ///
    /// # Errors
    /// Propagates the underlying connect/clone failure.
    pub fn connect(addr: impl ToSocketAddrs) -> std::io::Result<Self> {
        let writer = TcpStream::connect(addr)?;
        writer.set_nodelay(true)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(Self { writer, reader })
    }

    /// Set a read timeout for responses (`None` blocks forever).
    ///
    /// # Errors
    /// Propagates the socket-option failure.
    pub fn set_timeout(&self, timeout: Option<Duration>) -> std::io::Result<()> {
        self.writer.set_read_timeout(timeout)
    }

    /// Send one raw request line without waiting for the reply (the
    /// send half of pipelining). Pair each call with a later
    /// [`Client::recv_line`]; replies come back in send order.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn send_line(&mut self, line: &str) -> Result<(), ClientError> {
        let mut out = String::with_capacity(line.len() + 1);
        out.push_str(line);
        out.push('\n');
        self.writer.write_all(out.as_bytes())?;
        Ok(())
    }

    /// Read one raw reply line (no trailing newline) — the receive
    /// half of pipelining.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the socket fails or the server closes
    /// the connection before replying.
    pub fn recv_line(&mut self) -> Result<String, ClientError> {
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(ClientError::Io(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            )));
        }
        while reply.ends_with('\n') || reply.ends_with('\r') {
            reply.pop();
        }
        Ok(reply)
    }

    /// Send one raw line and read one raw reply line (no trailing
    /// newline on either side).
    ///
    /// # Errors
    /// [`ClientError::Io`] when the socket fails or the server closes
    /// the connection before replying.
    pub fn call_line(&mut self, line: &str) -> Result<String, ClientError> {
        self.send_line(line)?;
        self.recv_line()
    }

    /// Send one typed request without waiting for its reply. Pair with
    /// [`Client::recv`]; replies come back in send order.
    ///
    /// # Errors
    /// [`ClientError::Io`] when the write fails.
    pub fn send(&mut self, request: &Request) -> Result<(), ClientError> {
        self.send_line(&request.encode())
    }

    /// Read and decode the next typed response (matching the oldest
    /// un-received [`Client::send`]).
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Protocol`] as in
    /// [`Client::call_line`].
    pub fn recv(&mut self) -> Result<Response, ClientError> {
        let reply = self.recv_line()?;
        Ok(Response::decode(&reply)?)
    }

    /// Pipeline a batch of requests: write them all back-to-back, then
    /// collect one response per request, in request order. Server
    /// `error` replies are returned in place as
    /// `Response::Error { .. }`, not promoted to `Err` — a shed
    /// request must not cost the responses behind it.
    ///
    /// Bursts should stay far below the server's write-backpressure
    /// budget (256 KiB of undrained responses): nothing is read back
    /// until every request is written, and a server waiting on this
    /// client to drain would stall the write half.
    ///
    /// # Errors
    /// Transport/decode failures as in [`Client::recv`].
    pub fn pipeline(&mut self, requests: &[Request]) -> Result<Vec<Response>, ClientError> {
        let mut burst = String::new();
        for request in requests {
            burst.push_str(&request.encode());
            burst.push('\n');
        }
        self.writer.write_all(burst.as_bytes())?;
        requests.iter().map(|_| self.recv()).collect()
    }

    /// Send one typed request and decode the typed response. Server
    /// `error` replies are returned as `Ok(Response::Error { .. })` —
    /// use the typed helpers below to turn them into
    /// [`ClientError::Server`].
    ///
    /// # Errors
    /// [`ClientError::Io`] / [`ClientError::Protocol`] as in
    /// [`Client::call_line`].
    pub fn call(&mut self, request: &Request) -> Result<Response, ClientError> {
        let reply = self.call_line(&request.encode())?;
        Ok(Response::decode(&reply)?)
    }

    fn expect_ok(&mut self, request: &Request) -> Result<Response, ClientError> {
        match self.call(request)? {
            Response::Error { code, message } => Err(ClientError::Server { code, message }),
            other => Ok(other),
        }
    }

    /// Create a session; returns the wire session id.
    ///
    /// # Errors
    /// Transport/decode failures as in [`Client::call`];
    /// [`ClientError::Server`] when the server rejects the request.
    pub fn create(
        &mut self,
        concept: u32,
        method: MethodSpec,
        search_k: Option<u32>,
    ) -> Result<u64, ClientError> {
        match self.expect_ok(&Request::Create {
            concept,
            method,
            search_k,
        })? {
            Response::Created { session } => Ok(session),
            other => Err(ClientError::UnexpectedReply(other.encode())),
        }
    }

    /// Fetch the next batch (mirrors
    /// [`seesaw_core::SearchService::next_batch`]).
    ///
    /// # Errors
    /// As in [`Client::create`].
    pub fn next_batch(&mut self, session: u64, n: u32) -> Result<Batch, ClientError> {
        match self.expect_ok(&Request::NextBatch { session, n })? {
            Response::Batch { images } => Ok(Batch::Images(images)),
            Response::Exhausted => Ok(Batch::Exhausted),
            other => Err(ClientError::UnexpectedReply(other.encode())),
        }
    }

    /// Submit feedback for a shown image.
    ///
    /// # Errors
    /// As in [`Client::create`].
    pub fn feedback(
        &mut self,
        session: u64,
        image: ImageId,
        relevant: bool,
        boxes: Vec<BBox>,
    ) -> Result<(), ClientError> {
        match self.expect_ok(&Request::Feedback {
            session,
            image,
            relevant,
            boxes,
        })? {
            Response::Ack => Ok(()),
            other => Err(ClientError::UnexpectedReply(other.encode())),
        }
    }

    /// Read `(images_shown, feedback_received, query_drift)`.
    ///
    /// # Errors
    /// As in [`Client::create`].
    pub fn stats(&mut self, session: u64) -> Result<(u64, u64, f32), ClientError> {
        match self.expect_ok(&Request::Stats { session })? {
            Response::Stats {
                images_shown,
                feedback_received,
                query_drift,
            } => Ok((images_shown, feedback_received, query_drift)),
            other => Err(ClientError::UnexpectedReply(other.encode())),
        }
    }

    /// Close a session.
    ///
    /// # Errors
    /// As in [`Client::create`].
    pub fn close(&mut self, session: u64) -> Result<(), ClientError> {
        match self.expect_ok(&Request::Close { session })? {
            Response::Ack => Ok(()),
            other => Err(ClientError::UnexpectedReply(other.encode())),
        }
    }
}
