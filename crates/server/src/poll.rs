//! Dependency-free readiness polling: the one thin shim between the
//! event loops and the kernel.
//!
//! The workspace builds with zero external crates, so instead of
//! `libc`/`mio` this module declares the two or three C symbols it
//! needs directly (they are part of the platform libc that `std`
//! already links) and wraps them in a safe, minimal API:
//!
//! * [`Poller`] — register/modify/deregister file descriptors with a
//!   readable/writable [`Interest`], then [`Poller::wait`] for
//!   [`Event`]s. Backed by **epoll** on Linux (level-triggered, O(1)
//!   per wakeup — the 10k-connections backend) and **poll(2)** on
//!   other Unixes (O(n) per wakeup, correctness-equivalent fallback).
//! * [`Waker`]/[`WakeRx`] — cross-thread wakeup for a blocked
//!   [`Poller::wait`], built on a nonblocking `UnixStream` pair from
//!   `std` (no extra syscall surface). Workers call [`Waker::wake`]
//!   when they route a completion back to a loop; a pending-flag
//!   collapses wake storms into at most one in-flight byte.
//!
//! All `unsafe` in the crate lives in the two `sys` modules below and
//! consists solely of FFI calls with checked return values; every
//! pointer passed is a stack or struct-owned buffer that outlives the
//! call.

use std::io;
use std::os::fd::{AsRawFd, RawFd};
use std::os::unix::net::UnixStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
#[cfg(test)]
use std::time::Duration;

/// Which readiness classes a registration cares about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Interest {
    pub readable: bool,
    pub writable: bool,
}

impl Interest {
    pub const READ: Self = Self {
        readable: true,
        writable: false,
    };
}

/// One readiness notification from [`Poller::wait`].
///
/// Errors and hangups are folded into `readable`/`writable` (the next
/// read/write on the fd surfaces the concrete error), mirroring how
/// epoll reports `EPOLLERR`/`EPOLLHUP` regardless of the registered
/// interest.
#[derive(Clone, Copy, Debug)]
pub(crate) struct Event {
    pub token: usize,
    pub readable: bool,
    pub writable: bool,
}

pub(crate) use sys::Poller;

#[cfg(target_os = "linux")]
#[allow(unsafe_code)] // FFI shim: see the module docs above.
mod sys {
    use super::{Event, Interest};
    use std::ffi::c_int;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    // The kernel ABI for `struct epoll_event`: packed on x86-64 (the
    // kernel header carries `__attribute__((packed))` there so 32- and
    // 64-bit layouts agree), naturally aligned elsewhere.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLL_CTL_MOD: c_int = 3;
    /// `O_CLOEXEC`: the epoll fd must not leak into spawned processes.
    const EPOLL_CLOEXEC: c_int = 0o2000000;

    /// How many events one `epoll_wait` call can return. Level
    /// triggering makes this a batching knob, not a correctness limit:
    /// anything left over is reported by the next call.
    const WAIT_BATCH: usize = 256;

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    fn mask(interest: Interest) -> u32 {
        let mut m = 0;
        if interest.readable {
            // RDHUP turns a peer's half-close into a readiness event
            // instead of waiting for the idle-timeout sweep.
            m |= EPOLLIN | EPOLLRDHUP;
        }
        if interest.writable {
            m |= EPOLLOUT;
        }
        m
    }

    /// Level-triggered epoll instance owning its fd.
    pub(crate) struct Poller {
        epfd: c_int,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        fn ctl(&self, op: c_int, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: mask(interest),
                data: token as u64,
            };
            // SAFETY: `ev` is a live stack value for the duration of
            // the call; the kernel copies it before returning.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn register(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, token, interest)
        }

        pub fn modify(&self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, token, interest)
        }

        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            // The event argument is ignored for DEL on every kernel
            // this crate supports (>= 2.6.9), but must be non-null for
            // the oldest ones; pass a dummy either way.
            self.ctl(EPOLL_CTL_DEL, fd, 0, Interest::READ)
        }

        /// Wait up to `timeout` and append ready events to `out`
        /// (which is cleared first). A timeout or `EINTR` is an empty
        /// result, not an error.
        pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let mut buf = [EpollEvent { events: 0, data: 0 }; WAIT_BATCH];
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            let n = {
                // SAFETY: `buf` holds WAIT_BATCH elements and outlives
                // the call; the kernel writes at most `maxevents` of
                // them.
                unsafe { epoll_wait(self.epfd, buf.as_mut_ptr(), WAIT_BATCH as c_int, timeout_ms) }
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for ev in buf.iter().take(n as usize) {
                // Copy fields out by value (the struct may be packed).
                let events = ev.events;
                let data = ev.data;
                out.push(Event {
                    token: data as usize,
                    readable: events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP) != 0,
                    writable: events & (EPOLLOUT | EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        fn drop(&mut self) {
            // SAFETY: closing the fd we own exactly once.
            unsafe {
                close(self.epfd);
            }
        }
    }
}

#[cfg(all(unix, not(target_os = "linux")))]
#[allow(unsafe_code)] // FFI shim: see the module docs above.
mod sys {
    use super::{Event, Interest};
    use std::collections::HashMap;
    use std::ffi::{c_int, c_short, c_uint};
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    extern "C" {
        // `nfds_t` is `unsigned int` on the BSD family (including
        // macOS), the only non-Linux Unixes this fallback targets.
        fn poll(fds: *mut PollFd, nfds: c_uint, timeout: c_int) -> c_int;
    }

    /// poll(2)-backed fallback: a registration table rebuilt into a
    /// `pollfd` array per wait. O(n) per wakeup — fine for the
    /// correctness-equivalent non-Linux path.
    pub(crate) struct Poller {
        registered: HashMap<RawFd, (usize, Interest)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self {
                registered: HashMap::new(),
            })
        }

        pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
            self.registered.insert(fd, (token, interest));
            Ok(())
        }

        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.registered.remove(&fd);
            Ok(())
        }

        pub fn wait(&mut self, timeout: Duration, out: &mut Vec<Event>) -> io::Result<()> {
            out.clear();
            let mut fds: Vec<PollFd> = Vec::with_capacity(self.registered.len());
            let mut tokens: Vec<usize> = Vec::with_capacity(self.registered.len());
            for (&fd, &(token, interest)) in &self.registered {
                let mut events = 0;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                fds.push(PollFd {
                    fd,
                    events,
                    revents: 0,
                });
                tokens.push(token);
            }
            let timeout_ms = timeout.as_millis().min(i32::MAX as u128) as c_int;
            // SAFETY: `fds` is a live, correctly sized array for the
            // duration of the call.
            let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as c_uint, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (pfd, &token) in fds.iter().zip(&tokens) {
                let re = pfd.revents;
                if re == 0 {
                    continue;
                }
                out.push(Event {
                    token,
                    readable: re & (POLLIN | POLLERR | POLLHUP) != 0,
                    writable: re & (POLLOUT | POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(not(unix))]
compile_error!(
    "seesaw-server's event loop needs a Unix readiness API (epoll or poll); \
     non-Unix targets are not supported"
);

/// The write half of a loop's wakeup channel, shared (via `Arc`) with
/// workers and the accept thread. [`Waker::wake`] is safe from any
/// thread and never blocks.
pub(crate) struct Waker {
    tx: UnixStream,
    /// Collapses bursts: only the first wake after a
    /// [`WakeRx::drain`]/[`Waker::clear_pending`] writes a byte.
    pending: AtomicBool,
}

impl Waker {
    /// Wake the owning loop if it is not already scheduled to wake.
    pub fn wake(&self) {
        if !self.pending.swap(true, Ordering::AcqRel) {
            // A full pipe means wakes are already pending — the loop
            // will drain; any other error means the loop is gone and
            // waking is moot.
            let _ = (&self.tx).write(&[1]);
        }
    }

    /// Called by the owning loop each tick — after [`WakeRx::drain`],
    /// processing messages: wakes requested after this point write a
    /// fresh byte and re-trigger the poller.
    pub fn clear_pending(&self) {
        self.pending.store(false, Ordering::Release);
    }
}

use std::io::{Read as _, Write as _};

/// The read half of a wakeup channel, owned by its event loop and
/// registered with the loop's [`Poller`].
pub(crate) struct WakeRx {
    rx: UnixStream,
}

impl WakeRx {
    pub fn fd(&self) -> RawFd {
        self.rx.as_raw_fd()
    }

    /// Discard all buffered wake bytes.
    pub fn drain(&mut self) {
        let mut buf = [0u8; 64];
        loop {
            match self.rx.read(&mut buf) {
                Ok(0) => return, // writer gone; nothing more will come
                Ok(_) => {}
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return, // WouldBlock: drained
            }
        }
    }
}

/// Build a connected waker pair (both ends nonblocking).
pub(crate) fn waker_pair() -> io::Result<(Arc<Waker>, WakeRx)> {
    let (tx, rx) = UnixStream::pair()?;
    tx.set_nonblocking(true)?;
    rx.set_nonblocking(true)?;
    Ok((
        Arc::new(Waker {
            tx,
            pending: AtomicBool::new(false),
        }),
        WakeRx { rx },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::{TcpListener, TcpStream};

    #[test]
    fn waker_wakes_a_blocked_poller_once_per_drain() {
        let (waker, mut rx) = waker_pair().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(rx.fd(), 7, Interest::READ).unwrap();

        let mut events = Vec::new();
        // No wake: the wait times out empty.
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty());

        // A burst of wakes collapses into one readiness event.
        waker.wake();
        waker.wake();
        waker.wake();
        poller.wait(Duration::from_secs(5), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].token, 7);
        assert!(events[0].readable);
        waker.clear_pending();
        rx.drain();

        // Drained: quiet again until the next wake.
        poller.wait(Duration::from_millis(10), &mut events).unwrap();
        assert!(events.is_empty());
        waker.wake();
        poller.wait(Duration::from_secs(5), &mut events).unwrap();
        assert_eq!(events.len(), 1);
    }

    #[test]
    fn socket_readability_and_writability_are_reported() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = TcpStream::connect(addr).unwrap();
        let (server, _) = listener.accept().unwrap();
        server.set_nonblocking(true).unwrap();

        let mut poller = Poller::new().unwrap();
        poller
            .register(
                server.as_raw_fd(),
                1,
                Interest {
                    readable: true,
                    writable: true,
                },
            )
            .unwrap();

        // A fresh connected socket is writable but not yet readable.
        let mut events = Vec::new();
        poller.wait(Duration::from_secs(5), &mut events).unwrap();
        assert_eq!(events.len(), 1);
        assert!(events[0].writable);
        assert!(!events[0].readable);

        // Bytes from the peer make it readable.
        use std::io::Write as _;
        (&client).write_all(b"ping\n").unwrap();
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        loop {
            poller.wait(Duration::from_millis(25), &mut events).unwrap();
            if events.iter().any(|e| e.token == 1 && e.readable) {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "never became readable"
            );
        }

        // Dropping read interest silences the readable report.
        poller
            .modify(
                server.as_raw_fd(),
                1,
                Interest {
                    readable: false,
                    writable: false,
                },
            )
            .unwrap();
        poller.wait(Duration::from_millis(25), &mut events).unwrap();
        assert!(
            events.iter().all(|e| e.token != 1),
            "deregistered interest still reported: {events:?}"
        );

        poller.deregister(server.as_raw_fd()).unwrap();
    }
}
