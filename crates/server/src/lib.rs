//! The network front end of the serving stack: a real TCP server over
//! the [`seesaw_core::protocol`] line codec.
//!
//! PR 3 built the transport-agnostic half — a serializable
//! [`Request`](seesaw_core::Request)/[`Response`](seesaw_core::Response)
//! pair and [`SearchService::handle_line`](seesaw_core::SearchService),
//! which maps one encoded line to one encoded reply. This crate is the
//! missing socket: a [`Server`] binds a `std::net::TcpListener`, frames
//! newline-delimited requests per connection, dispatches through
//! `Arc<SearchService>`, and writes back one response line per request,
//! in order. No async runtime and no external dependencies — the only
//! platform surface is a thin readiness shim (epoll on Linux, poll(2)
//! elsewhere) declared directly against the libc that `std` already
//! links.
//!
//! # Serving model
//!
//! SeeSaw's interactive loop means most connections are idle most of
//! the time — a user looks at a batch of images far longer than the
//! server takes to rank it. So connections don't get threads; they get
//! *state machines*, multiplexed by a small fixed set of event-loop
//! threads over nonblocking sockets:
//!
//! ```text
//! accept thread ──► event loops (event_loops threads, round-robin)
//!                      │  own all connection state: read buffers,
//!                      │  newline framing, in-order response slots,
//!                      │  pending-write flushing (≤ max_connections)
//!                      ▼
//!                   bounded job queue (≤ queue_depth, reject when full)
//!                      ▼
//!                   worker pool (workers threads)
//!                      │  SearchService::handle_line
//!                      ▼
//!                   completion routed back to the owning loop,
//!                   released strictly in request order per connection
//! ```
//!
//! Requests **pipeline**: a client may write a whole burst of request
//! lines without waiting for replies. The server buffers the burst,
//! executes it *in arrival order* — the protocol is stateful, so the
//! feedback a client pipelined before a `next_batch` must apply before
//! that batch is ranked — and writes responses back in the same order.
//! A burst costs one network round trip instead of one per request,
//! and replies produced without a worker (shed requests, framing
//! errors) are slotted into the same order.
//!
//! Properties the tests pin down:
//!
//! * **Backpressure, not queues.** The job queue is *bounded*. When
//!   every worker is busy and the backlog is full, the submission is
//!   rejected immediately and the client gets a protocol-level
//!   [`ErrorCode::Overloaded`](seesaw_core::ErrorCode) error — latency
//!   of accepted requests stays flat and memory stays bounded, and the
//!   client learns, in-band, to back off. The connection cap sheds the
//!   same way: one `overloaded` line, then close. Per connection, the
//!   loop stops *reading* while `max_pipeline` requests are in flight
//!   or more than 256 KiB of responses are unsent, so neither a
//!   firehose client nor one that never reads can balloon memory or
//!   stall its loop.
//! * **Graceful shutdown drains.** [`Server::shutdown`] stops the
//!   accept thread, answers every request line already received (its
//!   real result if it reaches the queue, an `overloaded` error if
//!   not), then joins every thread. Nothing accepted is abandoned
//!   mid-flight.
//! * **Bounded reads and writes.** A connection may not pin more than
//!   [`MAX_LINE_BYTES`](seesaw_core::MAX_LINE_BYTES) of partial line,
//!   sit idle past the read timeout, or stall its pending response
//!   bytes past the write timeout — and none of those misbehaviors
//!   blocks any other connection, because no loop ever blocks on a
//!   socket.
//!
//! # Quickstart
//!
//! ```
//! use seesaw_core::protocol::MethodSpec;
//! use seesaw_core::{Batch, PreprocessConfig, Preprocessor, SearchService};
//! use seesaw_dataset::DatasetSpec;
//! use seesaw_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let dataset = Arc::new(DatasetSpec::coco_like(0.0).generate(5));
//! let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
//! let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
//!
//! // Port 0: the OS picks an ephemeral port.
//! let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let session = client.create(dataset.queries()[0].concept, MethodSpec::SeeSaw, None)?;
//! let Batch::Images(images) = client.next_batch(session, 3)? else {
//!     panic!("fresh session cannot be exhausted");
//! };
//! assert_eq!(images.len(), 3);
//! client.close(session)?;
//! let stats = server.shutdown(); // drains in-flight work, joins threads
//! assert_eq!(stats.requests_served, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `serve` binary in this crate serves a synthetic dataset on a
//! fixed port for interactive poking (`nc 127.0.0.1 7878`, one JSON
//! line per request); `cargo run --release --example search_server`
//! runs the full multi-client round trip against an ephemeral port and
//! exits.

mod client;
mod conn;
mod event_loop;
mod poll;
mod queue;
mod server;

pub use client::{Client, ClientError};
pub use server::{Server, ServerConfig, ServerStats};
