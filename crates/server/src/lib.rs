//! The network front end of the serving stack: a real TCP server over
//! the [`seesaw_core::protocol`] line codec.
//!
//! PR 3 built the transport-agnostic half — a serializable
//! [`Request`](seesaw_core::Request)/[`Response`](seesaw_core::Response)
//! pair and [`SearchService::handle_line`](seesaw_core::SearchService),
//! which maps one encoded line to one encoded reply. This crate is the
//! missing socket: a [`Server`] binds a `std::net::TcpListener`, frames
//! newline-delimited requests per connection, dispatches through
//! `Arc<SearchService>`, and writes back one response line per request,
//! in order. No async runtime and no external dependencies — plain
//! blocking sockets and threads, with every blocking point bounded.
//!
//! # Serving model
//!
//! ```text
//! accept loop ──► connection threads (≤ max_connections)
//!                    │  frame one request line (≤ MAX_LINE_BYTES)
//!                    ▼
//!                bounded job queue (≤ queue_depth, reject when full)
//!                    ▼
//!                worker pool (workers threads)
//!                    │  SearchService::handle_line
//!                    ▼
//!                connection thread writes the response line
//! ```
//!
//! Three properties the tests pin down:
//!
//! * **Backpressure, not queues.** The job queue is *bounded*. When
//!   every worker is busy and the backlog is full, the submission is
//!   rejected immediately and the client gets a protocol-level
//!   [`ErrorCode::Overloaded`](seesaw_core::ErrorCode) error — latency
//!   of accepted requests stays flat and memory stays bounded, and the
//!   client learns, in-band, to back off. The connection cap sheds the
//!   same way: one `overloaded` line, then close.
//! * **Graceful shutdown drains.** [`Server::shutdown`] stops the
//!   accept loop, answers every request line already received (its real
//!   result if it reaches the queue, an `overloaded` error if not),
//!   then joins every thread. Nothing accepted is abandoned mid-flight.
//! * **Bounded reads.** A connection may not pin more than
//!   [`MAX_LINE_BYTES`](seesaw_core::MAX_LINE_BYTES) of partial line,
//!   sit idle past the read timeout, or stall a response write past the
//!   write timeout.
//!
//! # Quickstart
//!
//! ```
//! use seesaw_core::protocol::MethodSpec;
//! use seesaw_core::{Batch, PreprocessConfig, Preprocessor, SearchService};
//! use seesaw_dataset::DatasetSpec;
//! use seesaw_server::{Client, Server, ServerConfig};
//! use std::sync::Arc;
//!
//! let dataset = Arc::new(DatasetSpec::coco_like(0.0).generate(5));
//! let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
//! let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
//!
//! // Port 0: the OS picks an ephemeral port.
//! let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default())?;
//! let mut client = Client::connect(server.local_addr())?;
//! let session = client.create(dataset.queries()[0].concept, MethodSpec::SeeSaw, None)?;
//! let Batch::Images(images) = client.next_batch(session, 3)? else {
//!     panic!("fresh session cannot be exhausted");
//! };
//! assert_eq!(images.len(), 3);
//! client.close(session)?;
//! let stats = server.shutdown(); // drains in-flight work, joins threads
//! assert_eq!(stats.requests_served, 3);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! The `serve` binary in this crate serves a synthetic dataset on a
//! fixed port for interactive poking (`nc 127.0.0.1 7878`, one JSON
//! line per request); `cargo run --release --example search_server`
//! runs the full multi-client round trip against an ephemeral port and
//! exits.

mod client;
mod queue;
mod server;

pub use client::{Client, ClientError};
pub use server::{Server, ServerConfig, ServerStats};
