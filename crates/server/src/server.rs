//! The TCP front end: accept loop, connection framing, worker pool,
//! and graceful shutdown.

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::sync_channel;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use seesaw_core::protocol::{ErrorCode, Response, MAX_LINE_BYTES};
use seesaw_core::SearchService;

use crate::queue::{Job, JobQueue, SubmitError};

/// Tuning knobs for a [`Server`]. The defaults suit tests and small
/// deployments; every limit exists so that load sheds visibly (an
/// `overloaded` protocol error) instead of queueing without bound.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (default 4). Dispatch is
    /// CPU-bound (vector-store scans, alignment solves), so more
    /// workers than cores buys nothing.
    pub workers: usize,
    /// Requests that may wait for a worker before submissions are
    /// rejected with an `overloaded` error (default 64).
    pub queue_depth: usize,
    /// Concurrent connections; further accepts are sent one
    /// `overloaded` line and closed (default 256).
    pub max_connections: usize,
    /// How long a connection may sit idle (no complete request line)
    /// before the server closes it (default 30 s).
    pub read_timeout: Duration,
    /// Timeout for writing one response line; a client that stops
    /// draining its socket is disconnected (default 10 s).
    pub write_timeout: Duration,
    /// Granularity at which blocked reads/accepts re-check the
    /// shutdown flag (default 25 ms). Bounds shutdown latency; not a
    /// protocol knob.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            queue_depth: 64,
            max_connections: 256,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl ServerConfig {
    /// Set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the bounded queue depth (clamped to at least 1 — the queue
    /// is also the worker handoff, so depth 0 could serve nothing).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Set the concurrent-connection cap.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Set the idle read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Set the per-response write timeout.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }
}

/// Monotonic counters, snapshotted as [`ServerStats`].
#[derive(Default)]
struct Counters {
    connections_accepted: AtomicU64,
    connections_rejected: AtomicU64,
    requests_served: AtomicU64,
    requests_rejected_saturated: AtomicU64,
}

/// A snapshot of a server's lifetime accounting (taken by
/// [`Server::stats`] or returned by [`Server::shutdown`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and handed to a handler thread.
    pub connections_accepted: u64,
    /// Connections turned away at the cap (sent one `overloaded` line).
    pub connections_rejected: u64,
    /// Responses written back to clients, protocol errors included.
    pub requests_served: u64,
    /// Requests shed with an `overloaded` error because the worker
    /// queue was full (a subset of `requests_served` — the rejection
    /// itself is a served response).
    pub requests_rejected_saturated: u64,
}

/// Shared state between the accept loop, connection handlers, worker
/// pool, and the owning [`Server`] handle.
struct Shared {
    service: Arc<SearchService>,
    config: ServerConfig,
    queue: JobQueue,
    shutdown: AtomicBool,
    open_connections: AtomicUsize,
    counters: Counters,
}

impl Shared {
    fn overloaded_line(&self, message: &str) -> String {
        Response::Error {
            code: ErrorCode::Overloaded,
            message: message.to_string(),
        }
        .encode()
    }
}

/// A running TCP server speaking the newline-delimited
/// [`seesaw_core::protocol`] over real sockets.
///
/// Lifecycle: [`Server::bind`] spawns the accept loop and worker pool
/// and returns immediately; [`Server::local_addr`] gives the bound
/// address (bind port 0 for an ephemeral one); [`Server::shutdown`]
/// drains in-flight requests and joins every thread. Dropping a
/// running server shuts it down the same way.
///
/// See the [crate docs](crate) for the full serving model.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    worker_threads: Vec<JoinHandle<()>>,
    conn_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `service` in background threads.
    ///
    /// # Errors
    /// Propagates the bind failure (`EADDRINUSE`, permission, …).
    pub fn bind(
        service: Arc<SearchService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + poll keeps shutdown latency bounded
        // without signals or a self-connect.
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            service,
            queue: JobQueue::new(config.queue_depth.max(1)),
            config,
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            counters: Counters::default(),
        });

        let worker_threads = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("seesaw-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawning a worker thread")
            })
            .collect();

        let conn_threads = Arc::new(Mutex::new(Vec::new()));
        let accept_thread = {
            let shared = Arc::clone(&shared);
            let conn_threads = Arc::clone(&conn_threads);
            std::thread::Builder::new()
                .name("seesaw-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, &conn_threads))
                .expect("spawning the accept thread")
        };

        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            worker_threads,
            conn_threads,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::Acquire)
    }

    /// Snapshot the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: c.connections_rejected.load(Ordering::Relaxed),
            requests_served: c.requests_served.load(Ordering::Relaxed),
            requests_rejected_saturated: c.requests_rejected_saturated.load(Ordering::Relaxed),
        }
    }

    /// Gracefully shut down: stop accepting, let every request already
    /// read off a socket finish and its response be written, then join
    /// all threads and return the final accounting.
    ///
    /// The drain guarantee, precisely: any request line the server has
    /// fully received before (or while) the shutdown signal lands gets
    /// a response before its connection closes — either its real
    /// result or, if it had not yet been accepted into the worker
    /// queue, an `overloaded` error. Nothing accepted is abandoned;
    /// connections close only after their in-flight round trip.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Connection handlers notice the flag within one poll interval
        // (or finish the request they are waiting on first — workers
        // are still alive here, which is what makes the drain work).
        let handles = std::mem::take(&mut *self.conn_threads.lock().expect("poisoned"));
        for h in handles {
            let _ = h.join();
        }
        // Only now close the queue: every submitter has exited, so the
        // workers drain whatever is left and stop.
        self.shared.queue.close();
        for w in self.worker_threads.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || !self.worker_threads.is_empty() {
            self.shutdown_in_place();
        }
    }
}

/// Worker: pull jobs off the bounded queue, dispatch through the
/// service, send the encoded response back to the connection thread.
fn worker_loop(shared: &Shared) {
    while let Some(Job { line, reply }) = shared.queue.pop() {
        let response = shared.service.handle_line(&line);
        // A dead receiver means the connection died mid-request; the
        // work is done either way, so ignore the send result.
        let _ = reply.send(response);
    }
}

/// Accept loop: enforce the connection cap, spawn one handler thread
/// per accepted connection, and exit promptly on shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, threads: &Mutex<Vec<JoinHandle<()>>>) {
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Reap finished handler threads so the handle list
                // tracks live connections, not lifetime connections.
                threads
                    .lock()
                    .expect("poisoned")
                    .retain(|h| !h.is_finished());

                let open = shared.open_connections.load(Ordering::Acquire);
                if open >= shared.config.max_connections {
                    shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    reject_connection(stream, shared);
                    continue;
                }
                shared.open_connections.fetch_add(1, Ordering::AcqRel);
                let spawned = std::thread::Builder::new()
                    .name("seesaw-conn".to_string())
                    .spawn({
                        let shared = Arc::clone(shared);
                        move || {
                            handle_connection(stream, &shared);
                            shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                        }
                    });
                match spawned {
                    Ok(handle) => {
                        shared
                            .counters
                            .connections_accepted
                            .fetch_add(1, Ordering::Relaxed);
                        threads.lock().expect("poisoned").push(handle);
                    }
                    // Thread exhaustion (EAGAIN under FD/thread
                    // pressure) is load, not a listener-fatal error:
                    // shed this connection like a cap rejection and
                    // keep accepting. The stream moved into the failed
                    // closure and is dropped with it.
                    Err(_) => {
                        shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                        shared
                            .counters
                            .connections_rejected
                            .fetch_add(1, Ordering::Relaxed);
                        std::thread::sleep(shared.config.poll_interval);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient per-connection accept failures (reset before
            // accept, file-descriptor pressure) must not kill the
            // listener.
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

/// Upper bound on how long the oversized-line rejection keeps
/// discarding a continuously streaming client's bytes before hanging
/// up regardless (the resulting RST is then the client's own doing).
const DRAIN_CAP: Duration = Duration::from_secs(2);

/// Tell a turned-away client why, in-band, then close.
fn reject_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut line = shared.overloaded_line("connection limit reached, retry later");
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}

/// Serve one connection: frame newline-delimited request lines,
/// dispatch each through the worker pool, write back one response line
/// per request, in order.
fn handle_connection(mut stream: TcpStream, shared: &Shared) {
    if stream
        .set_read_timeout(Some(shared.config.poll_interval))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.config.write_timeout))
            .is_err()
    {
        return;
    }
    let _ = stream.set_nodelay(true);

    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 4096];
    let mut last_activity = Instant::now();

    loop {
        // Serve every complete line already buffered — including after
        // the shutdown signal: these bytes were received, so they are
        // in-flight and must be answered before the connection closes.
        match serve_buffered_lines(&mut buf, &mut stream, shared) {
            // The idle clock measures *client* silence, so it restarts
            // when a response is written: time a request spent waiting
            // for a worker is the server's latency, not client idleness
            // (a slow round trip must not get the connection closed as
            // idle the moment it completes).
            Ok(served) if served > 0 => last_activity = Instant::now(),
            Ok(_) => {}
            Err(()) => return,
        }

        if shared.shutdown.load(Ordering::Acquire) {
            // Final drain: requests the client pipelined may still sit
            // in the socket receive buffer. Pull what has already
            // arrived — bounded by a deadline so a client that keeps
            // streaming cannot hold shutdown hostage — answer it, then
            // close.
            let deadline = Instant::now() + 4 * shared.config.poll_interval;
            while Instant::now() < deadline {
                match stream.read(&mut chunk) {
                    Ok(0) => break,
                    Ok(n) => buf.extend_from_slice(&chunk[..n]),
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(_) => break, // WouldBlock/TimedOut: nothing more arrived
                }
            }
            let _ = serve_buffered_lines(&mut buf, &mut stream, shared);
            return;
        }

        // An incomplete line longer than the protocol cap can never
        // become a valid request, and there is no newline to resync
        // on: report and hang up.
        if buf.len() > MAX_LINE_BYTES {
            let error = Response::Error {
                code: ErrorCode::Protocol,
                message: format!("request line exceeds the {MAX_LINE_BYTES}-byte limit"),
            }
            .encode();
            shared
                .counters
                .requests_served
                .fetch_add(1, Ordering::Relaxed);
            if write_line(&mut stream, &error).is_ok() {
                // The client may still be mid-send. Closing with unread
                // bytes in the receive buffer raises an RST that can
                // destroy the error line before the client reads it, so
                // signal end-of-responses (FIN) and discard the rest of
                // the send — bounded by a deadline so a client that
                // streams forever cannot pin the thread.
                let _ = stream.shutdown(std::net::Shutdown::Write);
                let deadline = Instant::now() + DRAIN_CAP;
                while Instant::now() < deadline {
                    match stream.read(&mut chunk) {
                        Ok(0) => break, // client saw FIN and closed
                        Ok(_) => {}     // discard
                        Err(e) if e.kind() == ErrorKind::Interrupted => {}
                        // A full poll tick of silence: whatever was in
                        // flight has been drained and the error line
                        // has long since been delivered.
                        Err(_) => break,
                    }
                }
            }
            return;
        }

        match stream.read(&mut chunk) {
            Ok(0) => return, // client closed
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                // Poll tick: re-check shutdown and the idle clock.
                if last_activity.elapsed() >= shared.config.read_timeout {
                    return;
                }
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            Err(_) => return,
        }
    }
}

/// Answer every complete line in `buf`, in order, returning how many
/// were served. `Err(())` means a response write failed and the
/// connection is dead.
fn serve_buffered_lines(
    buf: &mut Vec<u8>,
    stream: &mut TcpStream,
    shared: &Shared,
) -> Result<usize, ()> {
    let mut served = 0usize;
    while let Some(pos) = buf.iter().position(|&b| b == b'\n') {
        let line_bytes: Vec<u8> = buf.drain(..=pos).take(pos).collect();
        let response = match std::str::from_utf8(&line_bytes) {
            Ok(line) => dispatch(line, shared),
            Err(_) => Response::Error {
                code: ErrorCode::Protocol,
                message: "request line is not valid UTF-8".to_string(),
            }
            .encode(),
        };
        shared
            .counters
            .requests_served
            .fetch_add(1, Ordering::Relaxed);
        if write_line(stream, &response).is_err() {
            return Err(());
        }
        served += 1;
    }
    Ok(served)
}

/// Hand one line to the worker pool and wait for its response;
/// saturation and shutdown come back as `overloaded` errors instead of
/// blocking the connection.
fn dispatch(line: &str, shared: &Shared) -> String {
    let (reply_tx, reply_rx) = sync_channel(1);
    let job = Job {
        line: line.to_string(),
        reply: reply_tx,
    };
    match shared.queue.submit(job) {
        Ok(()) => match reply_rx.recv() {
            Ok(response) => response,
            // Unreachable in normal operation (workers outlive the
            // queue), but a lost worker must not wedge the connection.
            Err(_) => shared.overloaded_line("server shutting down"),
        },
        Err(SubmitError::Saturated) => {
            shared
                .counters
                .requests_rejected_saturated
                .fetch_add(1, Ordering::Relaxed);
            shared.overloaded_line("server overloaded: request queue is full, retry later")
        }
        Err(SubmitError::ShuttingDown) => shared.overloaded_line("server shutting down"),
    }
}

fn write_line(stream: &mut TcpStream, line: &str) -> std::io::Result<()> {
    // One write_all per response: the lines are short and the socket
    // has TCP_NODELAY, so there is no buffering layer to flush.
    let mut out = String::with_capacity(line.len() + 1);
    out.push_str(line);
    out.push('\n');
    stream.write_all(out.as_bytes())
}
