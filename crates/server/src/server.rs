//! The TCP front end: accept thread, readiness-polled event loops,
//! worker pool, and graceful shutdown.
//!
//! Threading model (see the [crate docs](crate) for the full picture):
//! one accept thread hands sockets round-robin to a small fixed set of
//! event-loop threads ([`EventLoop`]), each of which multiplexes its
//! share of the connections over nonblocking I/O; CPU-bound request
//! dispatch stays on the bounded-queue worker pool, with completions
//! routed back to the owning loop.

use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use seesaw_core::protocol::{ErrorCode, Response};
use seesaw_core::SearchService;

use crate::event_loop::{EventLoop, LoopHandle};
use crate::poll::{waker_pair, Poller, Waker};
use crate::queue::{Job, JobQueue};

/// Tuning knobs for a [`Server`]. The defaults suit tests and small
/// deployments; every limit exists so that load sheds visibly (an
/// `overloaded` protocol error) instead of queueing without bound.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Worker threads executing requests (default 4). Dispatch is
    /// CPU-bound (vector-store scans, alignment solves), so more
    /// workers than cores buys nothing.
    pub workers: usize,
    /// Event-loop threads multiplexing connection I/O (default 2).
    /// Each loop owns its share of the connections outright, so loops
    /// never contend; I/O is cheap relative to dispatch and a few
    /// loops drive thousands of connections.
    pub event_loops: usize,
    /// Requests that may wait for a worker before submissions are
    /// rejected with an `overloaded` error (default 64).
    pub queue_depth: usize,
    /// Concurrent connections; further accepts are sent one
    /// `overloaded` line and closed (default 256).
    pub max_connections: usize,
    /// Requests one connection may have accepted (response slot
    /// claimed) but not yet flushed before the loop stops reading from
    /// it — the per-connection pipelining window (default 64).
    /// Execution itself is serialized per connection (arrival order);
    /// this bounds the response backlog a bursty connection can
    /// accumulate.
    pub max_pipeline: usize,
    /// How long a connection may sit idle (no complete request line)
    /// before the server closes it (default 30 s).
    pub read_timeout: Duration,
    /// How long a connection's pending response bytes may make no
    /// progress (client not draining its socket) before the server
    /// disconnects it (default 10 s).
    pub write_timeout: Duration,
    /// Upper bound on an event-loop tick: how long a loop may sleep in
    /// the poller before sweeping timeouts and re-checking the
    /// shutdown flag (default 25 ms). Bounds shutdown latency; not a
    /// protocol knob.
    pub poll_interval: Duration,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            workers: 4,
            event_loops: 2,
            queue_depth: 64,
            max_connections: 256,
            max_pipeline: 64,
            read_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(25),
        }
    }
}

impl ServerConfig {
    /// Set the worker-pool size.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Set the number of event-loop threads.
    pub fn with_event_loops(mut self, loops: usize) -> Self {
        self.event_loops = loops.max(1);
        self
    }

    /// Set the bounded queue depth (clamped to at least 1 — the queue
    /// is also the worker handoff, so depth 0 could serve nothing).
    pub fn with_queue_depth(mut self, depth: usize) -> Self {
        self.queue_depth = depth.max(1);
        self
    }

    /// Set the concurrent-connection cap.
    pub fn with_max_connections(mut self, cap: usize) -> Self {
        self.max_connections = cap.max(1);
        self
    }

    /// Set the per-connection pipelining window.
    pub fn with_max_pipeline(mut self, depth: usize) -> Self {
        self.max_pipeline = depth.max(1);
        self
    }

    /// Set the idle read timeout.
    pub fn with_read_timeout(mut self, timeout: Duration) -> Self {
        self.read_timeout = timeout;
        self
    }

    /// Set the write-progress (stalled client) timeout.
    pub fn with_write_timeout(mut self, timeout: Duration) -> Self {
        self.write_timeout = timeout;
        self
    }
}

/// Monotonic counters, snapshotted as [`ServerStats`].
#[derive(Default)]
pub(crate) struct Counters {
    pub connections_accepted: AtomicU64,
    pub connections_rejected: AtomicU64,
    pub requests_served: AtomicU64,
    pub requests_rejected_saturated: AtomicU64,
}

/// A snapshot of a server's lifetime accounting (taken by
/// [`Server::stats`] or returned by [`Server::shutdown`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServerStats {
    /// Connections accepted and adopted by an event loop.
    pub connections_accepted: u64,
    /// Connections turned away at the cap (sent one `overloaded` line).
    pub connections_rejected: u64,
    /// Responses written back to clients, protocol errors included.
    pub requests_served: u64,
    /// Requests shed with an `overloaded` error because the worker
    /// queue was full (a subset of `requests_served` — the rejection
    /// itself is a served response).
    pub requests_rejected_saturated: u64,
}

/// Shared state between the accept thread, event loops, worker pool,
/// and the owning [`Server`] handle.
pub(crate) struct Shared {
    pub service: Arc<SearchService>,
    pub config: ServerConfig,
    pub queue: JobQueue,
    pub shutdown: AtomicBool,
    pub open_connections: AtomicUsize,
    pub counters: Counters,
}

impl Shared {
    pub(crate) fn overloaded_line(&self, message: &str) -> String {
        Response::Error {
            code: ErrorCode::Overloaded,
            message: message.to_string(),
        }
        .encode()
    }
}

/// A running TCP server speaking the newline-delimited
/// [`seesaw_core::protocol`] over real sockets.
///
/// Lifecycle: [`Server::bind`] spawns the accept thread, the event
/// loops, and the worker pool, and returns immediately;
/// [`Server::local_addr`] gives the bound address (bind port 0 for an
/// ephemeral one); [`Server::shutdown`] drains in-flight requests and
/// joins every thread. Dropping a running server shuts it down the
/// same way.
///
/// See the [crate docs](crate) for the full serving model.
pub struct Server {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
    loop_threads: Vec<JoinHandle<()>>,
    loop_wakers: Vec<Arc<Waker>>,
    worker_threads: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind `addr` (use port 0 for an ephemeral port) and start
    /// serving `service` in background threads.
    ///
    /// # Errors
    /// Propagates the bind failure (`EADDRINUSE`, permission, …) and
    /// any failure to set up the event loops' pollers (fd exhaustion).
    pub fn bind(
        service: Arc<SearchService>,
        addr: impl ToSocketAddrs,
        config: ServerConfig,
    ) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        // Nonblocking accept + poll keeps shutdown latency bounded
        // without signals or a self-connect.
        listener.set_nonblocking(true)?;

        let shared = Arc::new(Shared {
            service,
            queue: JobQueue::new(config.queue_depth.max(1)),
            config,
            shutdown: AtomicBool::new(false),
            open_connections: AtomicUsize::new(0),
            counters: Counters::default(),
        });

        // Build every loop's poller and waker *before* spawning any
        // thread, so a setup failure unwinds cleanly out of bind.
        let mut loops = Vec::new();
        let mut handles = Vec::new();
        let mut loop_wakers = Vec::new();
        for _ in 0..shared.config.event_loops.max(1) {
            let poller = Poller::new()?;
            let (waker, wake_rx) = waker_pair()?;
            let (tx, rx) = channel();
            handles.push(LoopHandle {
                tx: tx.clone(),
                waker: Arc::clone(&waker),
            });
            loop_wakers.push(Arc::clone(&waker));
            loops.push(EventLoop::new(
                Arc::clone(&shared),
                poller,
                wake_rx,
                waker,
                rx,
                tx,
            ));
        }

        // Spawn failures (thread limits, OOM) propagate out of bind
        // like any other setup error instead of panicking.
        let worker_threads = (0..shared.config.workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("seesaw-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let loop_threads = loops
            .into_iter()
            .enumerate()
            .map(|(i, ev)| {
                std::thread::Builder::new()
                    .name(format!("seesaw-loop-{i}"))
                    .spawn(move || ev.run())
            })
            .collect::<std::io::Result<Vec<_>>>()?;

        let accept_thread = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("seesaw-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared, handles))?
        };

        Ok(Self {
            shared,
            local_addr,
            accept_thread: Some(accept_thread),
            loop_threads,
            loop_wakers,
            worker_threads,
        })
    }

    /// The address the server is listening on.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Connections currently being served.
    pub fn open_connections(&self) -> usize {
        self.shared.open_connections.load(Ordering::Acquire)
    }

    /// Snapshot the lifetime counters.
    pub fn stats(&self) -> ServerStats {
        let c = &self.shared.counters;
        ServerStats {
            connections_accepted: c.connections_accepted.load(Ordering::Relaxed),
            connections_rejected: c.connections_rejected.load(Ordering::Relaxed),
            requests_served: c.requests_served.load(Ordering::Relaxed),
            requests_rejected_saturated: c.requests_rejected_saturated.load(Ordering::Relaxed),
        }
    }

    /// Gracefully shut down: stop accepting, let every request already
    /// read off a socket finish and its response be written, then join
    /// all threads and return the final accounting.
    ///
    /// The drain guarantee, precisely: any request line the server has
    /// fully received before (or while) the shutdown signal lands gets
    /// a response before its connection closes — either its real
    /// result or, if it had not yet been accepted into the worker
    /// queue, an `overloaded` error. Nothing accepted is abandoned;
    /// connections close only after their in-flight requests have been
    /// answered.
    pub fn shutdown(mut self) -> ServerStats {
        self.shutdown_in_place();
        self.stats()
    }

    fn shutdown_in_place(&mut self) {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(accept) = self.accept_thread.take() {
            let _ = accept.join();
        }
        // Nudge every loop so none sleeps out a full poll interval
        // before noticing the flag; they then drain (workers are still
        // alive here, which is what makes the drain work) and exit
        // once their last connection closes.
        for waker in &self.loop_wakers {
            waker.wake();
        }
        for h in self.loop_threads.drain(..) {
            let _ = h.join();
        }
        // Only now close the queue: every submitter has exited, so the
        // workers drain whatever is left and stop.
        self.shared.queue.close();
        for w in self.worker_threads.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if self.accept_thread.is_some() || !self.worker_threads.is_empty() {
            self.shutdown_in_place();
        }
    }
}

/// Worker: pull jobs off the bounded queue, dispatch through the
/// service, route the encoded response back to the owning event loop.
fn worker_loop(shared: &Shared) {
    while let Some(Job { line, reply }) = shared.queue.pop() {
        let response = shared.service.handle_line(&line);
        reply.send(response);
    }
}

/// Accept thread: enforce the connection cap, hand accepted sockets to
/// the event loops round-robin, and exit promptly on shutdown.
fn accept_loop(listener: &TcpListener, shared: &Arc<Shared>, handles: Vec<LoopHandle>) {
    let mut next = 0usize;
    while !shared.shutdown.load(Ordering::Acquire) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let open = shared.open_connections.load(Ordering::Acquire);
                if open >= shared.config.max_connections {
                    shared
                        .counters
                        .connections_rejected
                        .fetch_add(1, Ordering::Relaxed);
                    reject_connection(stream, shared);
                    continue;
                }
                // Reserve the cap slot before the handoff; the owning
                // loop releases it when the connection closes.
                shared.open_connections.fetch_add(1, Ordering::AcqRel);
                let mut stream = Some(stream);
                for attempt in 0..handles.len() {
                    let handle = &handles[(next + attempt) % handles.len()];
                    let Some(s) = stream.take() else { break };
                    match handle.send_conn(s) {
                        Ok(()) => break,
                        // A loop only disappears at shutdown; fall
                        // through to the next one.
                        Err(back) => stream = Some(back),
                    }
                }
                next = next.wrapping_add(1);
                match stream {
                    None => {
                        shared
                            .counters
                            .connections_accepted
                            .fetch_add(1, Ordering::Relaxed);
                    }
                    // Every loop refused (shutdown race): release the
                    // slot and drop the socket.
                    Some(_) => {
                        shared.open_connections.fetch_sub(1, Ordering::AcqRel);
                    }
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {
                std::thread::sleep(shared.config.poll_interval);
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => {}
            // Transient per-connection accept failures (reset before
            // accept, file-descriptor pressure) must not kill the
            // listener.
            Err(_) => std::thread::sleep(shared.config.poll_interval),
        }
    }
}

/// Tell a turned-away client why, in-band, then close. Runs on the
/// accept thread with a bounded blocking write — rejected sockets
/// never touch an event loop.
fn reject_connection(mut stream: TcpStream, shared: &Shared) {
    let _ = stream.set_write_timeout(Some(shared.config.write_timeout));
    let mut line = shared.overloaded_line("connection limit reached, retry later");
    line.push('\n');
    let _ = stream.write_all(line.as_bytes());
}
