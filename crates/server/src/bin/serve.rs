//! Stand-alone demo server: generate a synthetic dataset, preprocess
//! it (or cold-start from a saved index file), and serve the line
//! protocol on a fixed port until killed.
//!
//! ```sh
//! cargo run --release --bin serve            # 127.0.0.1:7878
//! SEESAW_ADDR=0.0.0.0:9000 cargo run --release --bin serve
//!
//! # First run preprocesses and saves the index; every later run
//! # mmaps it back in milliseconds instead of rebuilding:
//! cargo run --release --bin serve -- --index /tmp/seesaw.ssawidx
//!
//! # Pick the store backend / row precision for the first build
//! # (loaded index files carry their own store; e.g. a PQ tier):
//! SEESAW_STORE=exact SEESAW_PRECISION=pq16x8 \
//!     cargo run --release --bin serve -- --index /tmp/seesaw-pq.ssawidx
//! ```
//!
//! Then speak one JSON line per request, e.g. with netcat:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! {"type":"create","concept":0,"method":"seesaw"}
//! {"type":"created","session":0}
//! {"type":"next_batch","session":0,"n":2}
//! {"type":"batch","images":[5,12]}
//! ```

use seesaw_core::{load_index, save_index, PreprocessConfig, Preprocessor, SearchService};
use seesaw_dataset::DatasetSpec;
use seesaw_server::{Server, ServerConfig};
use seesaw_vecstore::{RowPrecision, StoreConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let addr = std::env::var("SEESAW_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    let args: Vec<String> = std::env::args().collect();
    let index_path: Option<PathBuf> = args
        .windows(2)
        .find(|w| w[0] == "--index")
        .map(|w| PathBuf::from(&w[1]))
        .or_else(|| std::env::var("SEESAW_INDEX").ok().map(PathBuf::from));

    // The synthetic dataset itself (image metadata, concept vocabulary)
    // is cheap to regenerate and deterministic; the expensive part —
    // tiling, embedding, store construction — is what the index file
    // caches.
    eprintln!("[serve] generating synthetic dataset…");
    let dataset = Arc::new(
        DatasetSpec::coco_like(0.002)
            .with_max_queries(16)
            .generate(7),
    );
    // `SEESAW_STORE` / `SEESAW_PRECISION` select the store for a fresh
    // build (a loaded index file carries its own store, so they are
    // irrelevant on the cold-start path). `pq<m>x<nbits>` precisions
    // give the served index the byte-per-element ADC scan tier.
    let mut cfg = PreprocessConfig::fast();
    if let Ok(name) = std::env::var("SEESAW_STORE") {
        cfg.store = StoreConfig::from_backend_name(&name)
            .unwrap_or_else(|| panic!("SEESAW_STORE={name:?}: expected forest, exact, or ivf"));
    }
    if let Ok(name) = std::env::var("SEESAW_PRECISION") {
        let p = RowPrecision::parse(&name).unwrap_or_else(|| {
            panic!("SEESAW_PRECISION={name:?}: expected f32, f16, sq8, or pq<m>x<nbits>")
        });
        cfg.store = cfg.store.with_precision(p);
        eprintln!(
            "[serve] store: {} / {}",
            cfg.store.backend_name(),
            p.label()
        );
    }

    let index = match &index_path {
        Some(path) if path.exists() => {
            let t0 = Instant::now();
            let index = load_index(path, &cfg)
                .unwrap_or_else(|e| panic!("loading index {}: {e}", path.display()));
            eprintln!(
                "[serve] cold-started from {} in {:.1} ms (rows mmapped zero-copy)",
                path.display(),
                t0.elapsed().as_secs_f64() * 1e3
            );
            index
        }
        _ => {
            let t0 = Instant::now();
            let index = Preprocessor::new(cfg.clone()).build(&dataset);
            eprintln!(
                "[serve] preprocessed in {:.1} ms",
                t0.elapsed().as_secs_f64() * 1e3
            );
            if let Some(path) = &index_path {
                save_index(&index, path)
                    .unwrap_or_else(|e| panic!("saving index {}: {e}", path.display()));
                eprintln!("[serve] saved index to {}", path.display());
            }
            index
        }
    };

    let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
    eprintln!(
        "[serve] {} images, {} patch vectors, concepts 0..{}",
        service.index().n_images(),
        service.index().n_patches(),
        dataset.model.n_concepts()
    );

    let config = ServerConfig::default();
    eprintln!(
        "[serve] {} event loops, {} workers, queue depth {}, pipeline window {}",
        config.event_loops, config.workers, config.queue_depth, config.max_pipeline
    );
    let server = Server::bind(service, addr.as_str(), config)
        .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    eprintln!(
        "[serve] listening on {} — one JSON line per request (try `nc`), ctrl-c to stop",
        server.local_addr()
    );
    // Serve until killed; the Server's own threads do all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        let s = server.stats();
        eprintln!(
            "[serve] served {} requests over {} connections ({} open)",
            s.requests_served,
            s.connections_accepted,
            server.open_connections()
        );
    }
}
