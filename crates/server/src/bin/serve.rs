//! Stand-alone demo server: generate a synthetic dataset, preprocess
//! it, and serve the line protocol on a fixed port until killed.
//!
//! ```sh
//! cargo run --release --bin serve            # 127.0.0.1:7878
//! SEESAW_ADDR=0.0.0.0:9000 cargo run --release --bin serve
//! ```
//!
//! Then speak one JSON line per request, e.g. with netcat:
//!
//! ```text
//! $ nc 127.0.0.1 7878
//! {"type":"create","concept":0,"method":"seesaw"}
//! {"type":"created","session":0}
//! {"type":"next_batch","session":0,"n":2}
//! {"type":"batch","images":[5,12]}
//! ```

use seesaw_core::{PreprocessConfig, Preprocessor, SearchService};
use seesaw_dataset::DatasetSpec;
use seesaw_server::{Server, ServerConfig};
use std::sync::Arc;

fn main() {
    let addr = std::env::var("SEESAW_ADDR").unwrap_or_else(|_| "127.0.0.1:7878".to_string());
    eprintln!("[serve] generating synthetic dataset…");
    let dataset = Arc::new(
        DatasetSpec::coco_like(0.002)
            .with_max_queries(16)
            .generate(7),
    );
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
    eprintln!(
        "[serve] {} images, {} patch vectors, concepts 0..{}",
        service.index().n_images(),
        service.index().n_patches(),
        dataset.model.n_concepts()
    );

    let config = ServerConfig::default();
    eprintln!(
        "[serve] {} event loops, {} workers, queue depth {}, pipeline window {}",
        config.event_loops, config.workers, config.queue_depth, config.max_pipeline
    );
    let server = Server::bind(service, addr.as_str(), config)
        .unwrap_or_else(|e| panic!("binding {addr}: {e}"));
    eprintln!(
        "[serve] listening on {} — one JSON line per request (try `nc`), ctrl-c to stop",
        server.local_addr()
    );
    // Serve until killed; the Server's own threads do all the work.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(60));
        let s = server.stats();
        eprintln!(
            "[serve] served {} requests over {} connections ({} open)",
            s.requests_served,
            s.connections_accepted,
            server.open_connections()
        );
    }
}
