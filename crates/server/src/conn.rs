//! Per-connection state for the event loops: buffered reads, newline
//! framing, ordered response slots for pipelined requests, and a
//! buffered, never-blocking write side.
//!
//! A connection owns no thread. Its socket is nonblocking and
//! registered with the owning loop's poller; everything here is a pure
//! state machine the loop drives from readiness events and timer
//! ticks. The pieces:
//!
//! * **Read side** — bytes accumulate in `rbuf`; complete
//!   newline-framed lines are peeled off and dispatched. A partial
//!   line over `MAX_LINE_BYTES` poisons the connection
//!   ([`ConnState::Discarding`]).
//! * **[`SlotQueue`]** — the pipelining heart. Every dispatched
//!   request claims the next slot *in arrival order*; workers complete
//!   slots out of order; only the ready *prefix* is released to the
//!   write buffer, so responses always leave in request order.
//! * **Write side** — responses append to `wbuf` and drain on
//!   writability. A full kernel buffer never blocks the loop: the
//!   unsent tail just stays queued, and a client that stops reading is
//!   disconnected once the write side stalls past the configured
//!   timeout.
//! * **Backpressure** — reading pauses (interest drops) while the
//!   connection has `max_pipeline` requests in flight or more than
//!   [`WRITE_BUF_SOFT_CAP`] bytes of unsent responses, so one firehose
//!   client cannot balloon server memory.

use std::collections::VecDeque;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::time::Instant;

use crate::poll::Interest;

/// Unsent-response bytes beyond which the loop stops reading (and thus
/// stops producing new responses) for this connection until the client
/// drains its socket.
pub(crate) const WRITE_BUF_SOFT_CAP: usize = 256 * 1024;

/// Read granularity; also the most one readiness event pulls off a
/// single socket before the loop moves on (level triggering re-reports
/// the leftover, so fairness costs nothing).
pub(crate) const READ_CHUNK: usize = 16 * 1024;

/// In-order response slots for pipelined requests.
///
/// `claim` assigns the next sequence number (request arrival order),
/// `complete` fills a slot when its worker finishes, and `pop_ready`
/// releases the contiguous completed prefix — the ordering guarantee
/// of the wire protocol lives entirely in this struct.
///
/// The event loop keeps at most one *worker-bound* slot pending per
/// connection ([`SlotQueue::awaiting_worker`]): the interactive
/// protocol is stateful (feedback must apply before the batch request
/// behind it), so same-connection requests execute in arrival order.
/// Immediate completions (shed requests, framing errors) still
/// interleave freely via [`SlotQueue::claim_done`], which is why the
/// slot structure is needed at all.
pub(crate) struct SlotQueue {
    /// Sequence number of the front slot (the next response to leave).
    base_seq: u64,
    /// One entry per in-flight request; `Some` once completed.
    slots: VecDeque<Option<String>>,
    /// Claimed-but-uncompleted slots (requests inside the worker
    /// pool). The event loop keeps this at 0 or 1 per connection.
    pending: usize,
}

impl SlotQueue {
    pub fn new() -> Self {
        Self {
            base_seq: 0,
            slots: VecDeque::new(),
            pending: 0,
        }
    }

    /// Requests dispatched but not yet released to the write buffer.
    pub fn in_flight(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Whether a claimed slot is still waiting on its worker — the
    /// execution-serialization gate: the loop dispatches a
    /// connection's next line only when this is `false`.
    pub fn awaiting_worker(&self) -> bool {
        self.pending > 0
    }

    /// Claim the next slot, returning its sequence number.
    pub fn claim(&mut self) -> u64 {
        self.slots.push_back(None);
        self.pending += 1;
        self.base_seq + self.slots.len() as u64 - 1
    }

    /// Claim a slot and complete it immediately (responses produced
    /// without a worker round trip: shed requests, framing errors).
    pub fn claim_done(&mut self, line: String) {
        self.slots.push_back(Some(line));
    }

    /// Fill the slot for `seq`. Returns `false` for a stale or unknown
    /// sequence (already released, or from a previous connection on a
    /// reused token — the caller drops those).
    pub fn complete(&mut self, seq: u64, line: String) -> bool {
        if seq < self.base_seq {
            return false;
        }
        let idx = (seq - self.base_seq) as usize;
        match self.slots.get_mut(idx) {
            Some(slot @ None) => {
                *slot = Some(line);
                self.pending -= 1;
                true
            }
            _ => false,
        }
    }

    /// Release the next response if the front slot is completed.
    pub fn pop_ready(&mut self) -> Option<String> {
        if matches!(self.slots.front(), Some(Some(_))) {
            self.base_seq += 1;
            return self.slots.pop_front().flatten();
        }
        None
    }
}

/// Lifecycle phase of one connection.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ConnState {
    /// Serving normally.
    Open,
    /// The peer half-closed (EOF). No more reads; in-flight responses
    /// still flush, then the connection closes.
    ReadClosed,
    /// Poisoned by an oversized partial line: the error response is
    /// queued, after it flushes the write side is shut down (FIN), and
    /// inbound bytes are read and discarded until the client quiets
    /// down, hangs up, or the discard deadline passes. Mirrors the
    /// blocking server's oversized-line teardown so the error line
    /// survives instead of being destroyed by an RST.
    Discarding,
}

/// What one read sweep over a socket produced.
pub(crate) enum ReadOutcome {
    /// Bytes arrived (or nothing was pending); connection still open.
    Open,
    /// The peer closed its write side (clean EOF).
    Eof,
    /// Hard socket error — the connection is dead.
    Dead,
}

/// One client connection owned by an event loop.
pub(crate) struct Conn {
    pub stream: TcpStream,
    /// Monotone id guarding against completions addressed to a
    /// previous occupant of a reused slab token.
    pub generation: u64,
    pub state: ConnState,
    /// Bytes read but not yet framed into a line.
    pub rbuf: Vec<u8>,
    /// Encoded responses waiting for the socket; `wpos` bytes of the
    /// front are already written.
    pub wbuf: Vec<u8>,
    pub wpos: usize,
    pub slots: SlotQueue,
    /// Client-silence clock (reset by reads *and* by responses leaving,
    /// so a slow solve is never misread as an idle client).
    pub last_activity: Instant,
    /// Write-progress clock; only meaningful while `wbuf` is nonempty.
    pub last_write_progress: Instant,
    /// Read-progress clock for the `Discarding` quiet-down heuristic.
    pub last_read_progress: Instant,
    /// `Discarding` only: FIN sent after the error response flushed.
    pub sent_fin: bool,
    /// `Discarding` only: absolute give-up deadline.
    pub discard_deadline: Option<Instant>,
    /// The interest currently registered with the poller.
    pub interest: Interest,
}

impl Conn {
    pub fn new(stream: TcpStream, generation: u64, now: Instant) -> Self {
        Self {
            stream,
            generation,
            state: ConnState::Open,
            rbuf: Vec::with_capacity(1024),
            wbuf: Vec::new(),
            wpos: 0,
            slots: SlotQueue::new(),
            last_activity: now,
            last_write_progress: now,
            last_read_progress: now,
            sent_fin: false,
            discard_deadline: None,
            interest: Interest::READ,
        }
    }

    /// Unsent response bytes.
    pub fn wbuf_pending(&self) -> usize {
        self.wbuf.len() - self.wpos
    }

    /// Pull whatever the socket has buffered (bounded by one
    /// [`READ_CHUNK`] per call). In `Discarding` the bytes are thrown
    /// away instead of framed.
    pub fn read_some(&mut self, now: Instant) -> ReadOutcome {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => return ReadOutcome::Eof,
                Ok(n) => {
                    self.last_read_progress = now;
                    if self.state != ConnState::Discarding {
                        self.rbuf.extend_from_slice(&chunk[..n]);
                        self.last_activity = now;
                    }
                    if n < chunk.len() {
                        // Short read: the socket buffer is empty.
                        return ReadOutcome::Open;
                    }
                    // A full chunk may have more behind it, but one
                    // chunk per sweep is the fairness budget; level
                    // triggering re-reports the rest next tick.
                    return ReadOutcome::Open;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return ReadOutcome::Open
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Dead,
            }
        }
    }

    /// Extract the next complete line from `rbuf` (without its
    /// newline), if any.
    pub fn next_line(&mut self) -> Option<Vec<u8>> {
        let pos = self.rbuf.iter().position(|&b| b == b'\n')?;
        let line: Vec<u8> = self.rbuf.drain(..=pos).take(pos).collect();
        Some(line)
    }

    /// Whether `rbuf` still holds at least one complete (framed) line.
    pub fn has_complete_line(&self) -> bool {
        self.rbuf.contains(&b'\n')
    }

    /// Append one response line (newline added here) to the write
    /// buffer.
    pub fn queue_response(&mut self, line: &str, now: Instant) {
        if self.wbuf_pending() == 0 {
            // Fresh backlog: compact and restart the stall clock.
            self.wbuf.clear();
            self.wpos = 0;
            self.last_write_progress = now;
        }
        self.wbuf.reserve(line.len() + 1);
        self.wbuf.extend_from_slice(line.as_bytes());
        self.wbuf.push(b'\n');
        // A response leaving is activity on the connection: the idle
        // clock measures client silence between *round trips*.
        self.last_activity = now;
    }

    /// Drain as much of `wbuf` as the socket accepts without blocking.
    /// `Ok(true)` means everything pending was flushed.
    pub fn try_write(&mut self, now: Instant) -> std::io::Result<bool> {
        while self.wpos < self.wbuf.len() {
            match self.stream.write(&self.wbuf[self.wpos..]) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        ErrorKind::WriteZero,
                        "socket accepted zero bytes",
                    ))
                }
                Ok(n) => {
                    self.wpos += n;
                    self.last_write_progress = now;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                    return Ok(false)
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        self.wbuf.clear();
        self.wpos = 0;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_release_responses_in_claim_order_only() {
        let mut q = SlotQueue::new();
        let s0 = q.claim();
        let s1 = q.claim();
        let s2 = q.claim();
        assert_eq!((s0, s1, s2), (0, 1, 2));
        assert_eq!(q.in_flight(), 3);

        // Completing out of order releases nothing until the front is
        // done…
        assert!(q.complete(s2, "third".into()));
        assert!(q.complete(s1, "second".into()));
        assert!(q.pop_ready().is_none());

        // …then the whole ready prefix comes out in order.
        assert!(q.complete(s0, "first".into()));
        assert_eq!(q.pop_ready().as_deref(), Some("first"));
        assert_eq!(q.pop_ready().as_deref(), Some("second"));
        assert_eq!(q.pop_ready().as_deref(), Some("third"));
        assert!(q.pop_ready().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn immediate_completions_interleave_with_worker_slots() {
        let mut q = SlotQueue::new();
        let a = q.claim();
        q.claim_done("shed".into()); // e.g. an overloaded rejection
        let c = q.claim();
        assert!(q.pop_ready().is_none(), "front still pending");
        assert!(q.complete(a, "a".into()));
        assert_eq!(q.pop_ready().as_deref(), Some("a"));
        assert_eq!(q.pop_ready().as_deref(), Some("shed"));
        assert!(q.pop_ready().is_none());
        assert!(q.complete(c, "c".into()));
        assert_eq!(q.pop_ready().as_deref(), Some("c"));
    }

    #[test]
    fn stale_and_duplicate_completions_are_rejected() {
        let mut q = SlotQueue::new();
        let a = q.claim();
        assert!(q.complete(a, "a".into()));
        assert!(!q.complete(a, "dup".into()), "double completion");
        assert_eq!(q.pop_ready().as_deref(), Some("a"));
        assert!(!q.complete(a, "late".into()), "released seq is stale");
        assert!(!q.complete(99, "unknown".into()), "never-claimed seq");
    }
}
