//! The bounded job queue between connection threads and the worker
//! pool.
//!
//! Bounded is the point: when every worker is busy and the queue is
//! full, [`JobQueue::submit`] fails *immediately* with
//! [`SubmitError::Saturated`] and the connection thread sheds the
//! request as a protocol-level `overloaded` error. An unbounded queue
//! would instead accept work without limit, and under sustained
//! overload every queued request waits longer than the one before it —
//! latency grows without bound and memory with it. Rejecting at the
//! door keeps the latency of *accepted* requests flat and tells
//! clients, in-band, to back off.

use std::collections::VecDeque;
use std::sync::mpsc::SyncSender;
use std::sync::{Condvar, Mutex};

/// One queued request: the raw line to dispatch and the channel the
/// connection thread is blocked on for the encoded response.
pub(crate) struct Job {
    /// The request line (no trailing newline).
    pub line: String,
    /// Where the worker sends the encoded response line.
    pub reply: SyncSender<String>,
}

/// Why a submission was refused. Either way the job was **not**
/// enqueued and will never produce a reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The queue is at capacity: every worker is busy and the backlog
    /// is full.
    Saturated,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A fixed-capacity MPMC job queue (mutex + condvar; no external
/// dependencies, no unbounded growth).
pub(crate) struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Signalled when a job is pushed or the queue is closed.
    available: Condvar,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueue a job, never blocking: a full queue is an immediate
    /// [`SubmitError::Saturated`] — backpressure, not waiting.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        if inner.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(SubmitError::Saturated);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the next job, blocking while the queue is empty. Returns
    /// `None` once the queue is closed **and** drained — workers exit
    /// only after every accepted job has been handed out.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().expect("queue mutex poisoned");
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self.available.wait(inner).expect("queue mutex poisoned");
        }
    }

    /// Stop accepting new jobs. Already-queued jobs are still handed
    /// out by [`JobQueue::pop`] (the drain half of graceful shutdown).
    pub fn close(&self) {
        self.inner.lock().expect("queue mutex poisoned").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::mpsc::sync_channel;

    fn job(tag: &str) -> (Job, std::sync::mpsc::Receiver<String>) {
        let (tx, rx) = sync_channel(1);
        (
            Job {
                line: tag.to_string(),
                reply: tx,
            },
            rx,
        )
    }

    #[test]
    fn saturation_rejects_instead_of_growing() {
        let q = JobQueue::new(2);
        let (a, _ra) = job("a");
        let (b, _rb) = job("b");
        let (c, _rc) = job("c");
        assert!(q.submit(a).is_ok());
        assert!(q.submit(b).is_ok());
        assert_eq!(q.submit(c).unwrap_err(), SubmitError::Saturated);
        // Popping one frees one slot.
        assert_eq!(q.pop().unwrap().line, "a");
        let (d, _rd) = job("d");
        assert!(q.submit(d).is_ok());
    }

    #[test]
    fn close_drains_queued_jobs_then_ends() {
        let q = JobQueue::new(4);
        let (a, _ra) = job("a");
        let (b, _rb) = job("b");
        q.submit(a).unwrap();
        q.submit(b).unwrap();
        q.close();
        let (c, _rc) = job("c");
        assert_eq!(q.submit(c).unwrap_err(), SubmitError::ShuttingDown);
        // The two accepted jobs still come out, in order, then None.
        assert_eq!(q.pop().unwrap().line, "a");
        assert_eq!(q.pop().unwrap().line, "b");
        assert!(q.pop().is_none());
        assert!(q.pop().is_none(), "closed stays closed");
    }

    #[test]
    fn pop_blocks_until_submit_from_another_thread() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop().map(|j| j.line))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        let (a, _ra) = job("late");
        q.submit(a).unwrap();
        assert_eq!(popper.join().unwrap().as_deref(), Some("late"));
    }
}
