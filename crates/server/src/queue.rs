//! The bounded job queue between the event loops and the worker pool.
//!
//! Bounded is the point: when every worker is busy and the queue is
//! full, [`JobQueue::submit`] fails *immediately* with
//! [`SubmitError::Saturated`] and the owning event loop sheds the
//! request as a protocol-level `overloaded` error. An unbounded queue
//! would instead accept work without limit, and under sustained
//! overload every queued request waits longer than the one before it —
//! latency grows without bound and memory with it. Rejecting at the
//! door keeps the latency of *accepted* requests flat and tells
//! clients, in-band, to back off.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

use crate::event_loop::Reply;

/// One queued request: the raw line to dispatch and the completion
/// route back to the event loop that owns the requesting connection.
pub(crate) struct Job {
    /// The request line (no trailing newline).
    pub line: String,
    /// Where the worker routes the encoded response line.
    pub reply: Reply,
}

/// Why a submission was refused. Either way the job was **not**
/// enqueued and will never produce a reply.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SubmitError {
    /// The queue is at capacity: every worker is busy and the backlog
    /// is full.
    Saturated,
    /// The server is shutting down and no longer accepts work.
    ShuttingDown,
}

struct Inner {
    jobs: VecDeque<Job>,
    closed: bool,
}

/// A fixed-capacity MPMC job queue (mutex + condvar; no external
/// dependencies, no unbounded growth).
pub(crate) struct JobQueue {
    capacity: usize,
    inner: Mutex<Inner>,
    /// Signalled when a job is pushed or the queue is closed.
    available: Condvar,
}

impl JobQueue {
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            inner: Mutex::new(Inner {
                jobs: VecDeque::with_capacity(capacity),
                closed: false,
            }),
            available: Condvar::new(),
        }
    }

    /// Enqueue a job, never blocking: a full queue is an immediate
    /// [`SubmitError::Saturated`] — backpressure, not waiting.
    pub fn submit(&self, job: Job) -> Result<(), SubmitError> {
        // Poison tolerance: the Inner state is valid after any panic
        // point (fields are updated atomically from the queue's view),
        // so a poisoned lock must not cascade into killing callers.
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed {
            return Err(SubmitError::ShuttingDown);
        }
        if inner.jobs.len() >= self.capacity {
            return Err(SubmitError::Saturated);
        }
        inner.jobs.push_back(job);
        drop(inner);
        self.available.notify_one();
        Ok(())
    }

    /// Dequeue the next job, blocking while the queue is empty. Returns
    /// `None` once the queue is closed **and** drained — workers exit
    /// only after every accepted job has been handed out.
    pub fn pop(&self) -> Option<Job> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(job) = inner.jobs.pop_front() {
                return Some(job);
            }
            if inner.closed {
                return None;
            }
            inner = self
                .available
                .wait(inner)
                .unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Stop accepting new jobs. Already-queued jobs are still handed
    /// out by [`JobQueue::pop`] (the drain half of graceful shutdown).
    pub fn close(&self) {
        self.inner.lock().unwrap_or_else(|p| p.into_inner()).closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poll::waker_pair;
    use std::sync::mpsc::channel;

    fn job(tag: &str) -> Job {
        // A throwaway completion route: the receiving ends are dropped
        // immediately, which Reply::send tolerates (a dead loop makes
        // delivery a no-op) — these tests only exercise the queue.
        let (tx, _rx) = channel();
        let (waker, _wake_rx) = waker_pair().expect("waker pair");
        Job {
            line: tag.to_string(),
            reply: Reply {
                tx,
                waker,
                token: 0,
                generation: 0,
                seq: 0,
            },
        }
    }

    #[test]
    fn saturation_rejects_instead_of_growing() {
        let q = JobQueue::new(2);
        assert!(q.submit(job("a")).is_ok());
        assert!(q.submit(job("b")).is_ok());
        assert_eq!(q.submit(job("c")).unwrap_err(), SubmitError::Saturated);
        // Popping one frees one slot.
        assert_eq!(q.pop().unwrap().line, "a");
        assert!(q.submit(job("d")).is_ok());
    }

    #[test]
    fn close_drains_queued_jobs_then_ends() {
        let q = JobQueue::new(4);
        q.submit(job("a")).unwrap();
        q.submit(job("b")).unwrap();
        q.close();
        assert_eq!(q.submit(job("c")).unwrap_err(), SubmitError::ShuttingDown);
        // The two accepted jobs still come out, in order, then None.
        assert_eq!(q.pop().unwrap().line, "a");
        assert_eq!(q.pop().unwrap().line, "b");
        assert!(q.pop().is_none());
        assert!(q.pop().is_none(), "closed stays closed");
    }

    #[test]
    fn pop_blocks_until_submit_from_another_thread() {
        let q = std::sync::Arc::new(JobQueue::new(1));
        let popper = {
            let q = std::sync::Arc::clone(&q);
            std::thread::spawn(move || q.pop().map(|j| j.line))
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        q.submit(job("late")).unwrap();
        assert_eq!(popper.join().unwrap().as_deref(), Some("late"));
    }
}
