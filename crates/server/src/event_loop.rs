//! The readiness-polled event loops that own all connection state.
//!
//! Each loop thread multiplexes its share of the connections over one
//! [`Poller`]: it reads whatever sockets have buffered, frames
//! newline-delimited requests, dispatches them to the shared worker
//! pool through the bounded [`JobQueue`](crate::queue::JobQueue), and
//! flushes completed responses back out — all without ever blocking on
//! a socket. Workers hand finished responses back with [`Reply::send`]
//! (an mpsc message plus a [`Waker`] nudge); the owning loop releases
//! them strictly in request order via each connection's
//! [`SlotQueue`](crate::conn::SlotQueue), which is what makes
//! pipelining safe.
//!
//! A loop drives every connection from two stimuli only: readiness
//! events and a bounded-interval tick (`poll_interval`, default 25 ms)
//! that sweeps timeouts, parses lines freed up by pipeline capacity,
//! and notices shutdown. The graceful-shutdown drain mirrors the
//! blocking server exactly: for four poll intervals after the signal,
//! already-received bytes keep being read and answered; then reads
//! stop and the loop lives on only until every in-flight response has
//! been written (or its client has stalled past the write timeout).

use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::sync::atomic::Ordering;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::Arc;
use std::time::{Duration, Instant};

use seesaw_core::protocol::{ErrorCode, Response, MAX_LINE_BYTES};

use crate::conn::{Conn, ConnState, ReadOutcome, WRITE_BUF_SOFT_CAP};
use crate::poll::{Event, Interest, Poller, WakeRx, Waker};
use crate::queue::{Job, SubmitError};
use crate::server::Shared;

/// Poller token reserved for the loop's own waker.
const WAKER_TOKEN: usize = usize::MAX;

/// Upper bound on how long a poisoned (oversized-line) connection may
/// keep streaming before the loop hangs up regardless (the resulting
/// RST is then the client's own doing).
const DRAIN_CAP: Duration = Duration::from_secs(2);

/// Everything a loop can be told from outside its thread.
pub(crate) enum LoopMsg {
    /// A freshly accepted connection to adopt.
    Conn(TcpStream),
    /// A worker finished the request `(token, generation, seq)`.
    Done {
        token: usize,
        generation: u64,
        seq: u64,
        line: String,
    },
}

/// The completion route a worker uses to hand a finished response back
/// to the loop that owns the requesting connection.
pub(crate) struct Reply {
    pub(crate) tx: Sender<LoopMsg>,
    pub(crate) waker: Arc<Waker>,
    pub(crate) token: usize,
    pub(crate) generation: u64,
    pub(crate) seq: u64,
}

impl Reply {
    /// Route one encoded response line back to the owning loop. A dead
    /// loop (shutdown already past the drain) makes this a no-op.
    pub(crate) fn send(self, line: String) {
        let _ = self.tx.send(LoopMsg::Done {
            token: self.token,
            generation: self.generation,
            seq: self.seq,
            line,
        });
        self.waker.wake();
    }
}

/// Connection storage: a slab keyed by poller token, with a free list
/// so tokens are reused and a generation counter so a reused token
/// never accepts a stale completion.
struct Slab {
    slots: Vec<Option<Conn>>,
    free: Vec<usize>,
    live: usize,
}

impl Slab {
    fn new() -> Self {
        Self {
            slots: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn insert(&mut self, conn: Conn) -> usize {
        self.live += 1;
        if let Some(token) = self.free.pop() {
            self.slots[token] = Some(conn);
            token
        } else {
            self.slots.push(Some(conn));
            self.slots.len() - 1
        }
    }

    fn get_mut(&mut self, token: usize) -> Option<&mut Conn> {
        self.slots.get_mut(token).and_then(|s| s.as_mut())
    }

    fn remove(&mut self, token: usize) -> Option<Conn> {
        let conn = self.slots.get_mut(token).and_then(|s| s.take());
        if conn.is_some() {
            self.free.push(token);
            self.live -= 1;
        }
        conn
    }
}

/// One event-loop thread's state. Constructed on the binding thread
/// (so poller/waker setup errors surface from [`Server::bind`]) and
/// moved into the loop thread.
///
/// [`Server::bind`]: crate::Server::bind
pub(crate) struct EventLoop {
    shared: Arc<Shared>,
    poller: Poller,
    wake_rx: WakeRx,
    waker: Arc<Waker>,
    rx: Receiver<LoopMsg>,
    tx: Sender<LoopMsg>,
    conns: Slab,
    next_generation: u64,
    /// False once the shutdown drain's read window has closed.
    reads_allowed: bool,
}

impl EventLoop {
    pub(crate) fn new(
        shared: Arc<Shared>,
        poller: Poller,
        wake_rx: WakeRx,
        waker: Arc<Waker>,
        rx: Receiver<LoopMsg>,
        tx: Sender<LoopMsg>,
    ) -> Self {
        Self {
            shared,
            poller,
            wake_rx,
            waker,
            rx,
            tx,
            conns: Slab::new(),
            next_generation: 0,
            reads_allowed: true,
        }
    }

    /// Run until shutdown completes. Consumes the loop.
    pub(crate) fn run(mut self) {
        if self
            .poller
            .register(self.wake_rx.fd(), WAKER_TOKEN, Interest::READ)
            .is_err()
        {
            // Without a waker the loop would still tick on the poll
            // interval, but completions would lag; treat it as fatal
            // for this loop (bind-time registration failing here is
            // effectively fd exhaustion).
            return;
        }
        let poll_interval = self.shared.config.poll_interval;
        let mut events: Vec<Event> = Vec::with_capacity(256);
        // Set when shutdown is observed: reads continue until this
        // instant, then only in-flight work is finished.
        let mut read_deadline: Option<Instant> = None;
        // Connections whose slots completed this iteration: processed
        // eagerly, so a completion's latency never depends on the
        // full-sweep cadence below.
        let mut touched: Vec<usize> = Vec::new();
        let mut next_sweep = Instant::now();

        loop {
            if self.poller.wait(poll_interval, &mut events).is_err() {
                // A persistently failing poller must not spin-burn the
                // CPU; fall back to tick cadence.
                std::thread::sleep(poll_interval);
            }
            let mut now = Instant::now();
            for i in 0..events.len() {
                let ev = events[i];
                if ev.token == WAKER_TOKEN {
                    // Serviced unconditionally below.
                    continue;
                }
                if ev.readable {
                    self.handle_read(ev.token, now);
                }
                if ev.writable {
                    self.handle_write(ev.token, now);
                }
            }

            // Absorb the wakeup channel in exactly this order — pipe,
            // flag, messages — so a wakeup can never be lost: a wake
            // arriving after the flag clears writes a fresh byte (the
            // next `wait` returns immediately), and one arriving
            // before it had already sent its message, which the drain
            // below therefore observes.
            self.wake_rx.drain();
            self.waker.clear_pending();
            while let Ok(msg) = self.rx.try_recv() {
                match msg {
                    LoopMsg::Conn(stream) => self.admit(stream, now),
                    LoopMsg::Done {
                        token,
                        generation,
                        seq,
                        line,
                    } => {
                        if let Some(conn) = self.conns.get_mut(token) {
                            if conn.generation == generation {
                                conn.slots.complete(seq, line);
                                touched.push(token);
                            }
                        }
                    }
                }
            }

            now = Instant::now();
            if read_deadline.is_none() && self.shared.shutdown.load(Ordering::Acquire) {
                read_deadline = Some(now + 4 * poll_interval);
            }
            if let Some(deadline) = read_deadline {
                self.reads_allowed = now < deadline;
            }

            // Flush completed responses (and dispatch whatever lines
            // they unblocked) for exactly the connections that got
            // completions — O(completions), not O(live connections).
            touched.sort_unstable();
            touched.dedup();
            for i in 0..touched.len() {
                self.process(touched[i], now);
            }
            touched.clear();

            // The full maintenance sweep — timeouts, shutdown drain —
            // is cadence-bounded so a busy loop doesn't pay O(live)
            // on every wakeup. During a drain it runs every iteration:
            // correctness over throughput once shutdown is underway.
            if now >= next_sweep || read_deadline.is_some() {
                self.tick(now, read_deadline);
                next_sweep = now + poll_interval;
            }

            if read_deadline.is_some_and(|d| Instant::now() >= d) && self.conns.live == 0 {
                return;
            }
        }
    }

    /// Adopt a connection handed over by the accept thread.
    fn admit(&mut self, stream: TcpStream, now: Instant) {
        if stream.set_nonblocking(true).is_err() {
            self.shared.open_connections.fetch_sub(1, Ordering::AcqRel);
            return;
        }
        let _ = stream.set_nodelay(true);
        let generation = self.next_generation;
        self.next_generation += 1;
        let fd = stream.as_raw_fd();
        let token = self.conns.insert(Conn::new(stream, generation, now));
        if self.poller.register(fd, token, Interest::READ).is_err() {
            self.conns.remove(token);
            self.shared.open_connections.fetch_sub(1, Ordering::AcqRel);
        }
    }

    /// Tear a connection down: deregister, drop the socket, release
    /// the cap slot.
    fn close(&mut self, token: usize) {
        if let Some(conn) = self.conns.remove(token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            drop(conn);
            self.shared.open_connections.fetch_sub(1, Ordering::AcqRel);
        }
    }

    fn handle_read(&mut self, token: usize, now: Instant) {
        if !self.reads_allowed {
            return;
        }
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if !conn.interest.readable {
            // Stale event from before an interest change.
            return;
        }
        match conn.read_some(now) {
            ReadOutcome::Open => {}
            ReadOutcome::Eof => match conn.state {
                // A poisoned client hanging up is the discard phase
                // completing successfully.
                ConnState::Discarding => {
                    self.close(token);
                    return;
                }
                _ => conn.state = ConnState::ReadClosed,
            },
            ReadOutcome::Dead => {
                self.close(token);
                return;
            }
        }
        self.process(token, now);
    }

    fn handle_write(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.wbuf_pending() > 0 && conn.try_write(now).is_err() {
            self.close(token);
            return;
        }
        // Draining the write buffer may lift the backpressure gate on
        // reads; dispatch any lines that were waiting on it (process
        // ends with flush + interest update).
        self.process(token, now);
    }

    /// Frame and dispatch buffered lines (bounded by pipeline
    /// capacity), poison on an oversized partial line, then flush.
    fn process(&mut self, token: usize, now: Instant) {
        let max_pipeline = self.shared.config.max_pipeline;
        loop {
            let Some(conn) = self.conns.get_mut(token) else {
                return;
            };
            if conn.state == ConnState::Discarding {
                break;
            }
            // Execution serialization: one worker-bound request per
            // connection at a time, so same-connection requests apply
            // their (stateful) effects in arrival order. Shed and
            // framing-error replies don't involve a worker and keep
            // flowing.
            if conn.slots.awaiting_worker() {
                break;
            }
            if conn.slots.in_flight() >= max_pipeline {
                break;
            }
            let Some(line) = conn.next_line() else {
                break;
            };
            self.dispatch(token, line);
        }
        if let Some(conn) = self.conns.get_mut(token) {
            if conn.state == ConnState::Open && conn.rbuf.len() > MAX_LINE_BYTES {
                // An incomplete line longer than the protocol cap can
                // never become a valid request, and there is no
                // newline to resync on: answer (in order, after
                // anything already in flight) and tear down.
                let error = Response::Error {
                    code: ErrorCode::Protocol,
                    message: format!("request line exceeds the {MAX_LINE_BYTES}-byte limit"),
                }
                .encode();
                conn.slots.claim_done(error);
                conn.rbuf.clear();
                conn.rbuf.shrink_to(1024);
                conn.state = ConnState::Discarding;
                conn.discard_deadline = Some(now + DRAIN_CAP);
            }
        }
        self.flush(token, now);
    }

    /// Hand one framed request line to the worker pool; shedding and
    /// framing failures complete the claimed slot immediately.
    fn dispatch(&mut self, token: usize, line_bytes: Vec<u8>) {
        let tx = self.tx.clone();
        let waker = Arc::clone(&self.waker);
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let line = match String::from_utf8(line_bytes) {
            Ok(line) => line,
            Err(_) => {
                conn.slots.claim_done(
                    Response::Error {
                        code: ErrorCode::Protocol,
                        message: "request line is not valid UTF-8".to_string(),
                    }
                    .encode(),
                );
                return;
            }
        };
        let seq = conn.slots.claim();
        let generation = conn.generation;
        let job = Job {
            line,
            reply: Reply {
                tx,
                waker,
                token,
                generation,
                seq,
            },
        };
        match self.shared.queue.submit(job) {
            Ok(()) => {}
            Err(SubmitError::Saturated) => {
                self.shared
                    .counters
                    .requests_rejected_saturated
                    .fetch_add(1, Ordering::Relaxed);
                let overloaded = self
                    .shared
                    .overloaded_line("server overloaded: request queue is full, retry later");
                // The conn borrow ended at `submit`; re-fetch to file
                // the rejection into the slot it claimed.
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.slots.complete(seq, overloaded);
                }
            }
            Err(SubmitError::ShuttingDown) => {
                let overloaded = self.shared.overloaded_line("server shutting down");
                if let Some(conn) = self.conns.get_mut(token) {
                    conn.slots.complete(seq, overloaded);
                }
            }
        }
    }

    /// Release the completed response prefix into the write buffer (in
    /// request order), account it, and push bytes at the socket.
    fn flush(&mut self, token: usize, now: Instant) {
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let mut flushed = 0u64;
        while let Some(line) = conn.slots.pop_ready() {
            conn.queue_response(&line, now);
            flushed += 1;
        }
        if flushed > 0 {
            self.shared
                .counters
                .requests_served
                .fetch_add(flushed, Ordering::Relaxed);
        }
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        if conn.wbuf_pending() > 0 && conn.try_write(now).is_err() {
            self.close(token);
            return;
        }
        self.update_interest(token);
    }

    /// Re-register the connection if its desired readiness interest
    /// changed (pipeline/backpressure gates reads; a pending write
    /// buffer requests writability).
    fn update_interest(&mut self, token: usize) {
        let reads_allowed = self.reads_allowed;
        let max_pipeline = self.shared.config.max_pipeline;
        let Some(conn) = self.conns.get_mut(token) else {
            return;
        };
        let readable = reads_allowed
            && match conn.state {
                ConnState::Open => {
                    conn.slots.in_flight() < max_pipeline
                        && conn.wbuf_pending() < WRITE_BUF_SOFT_CAP
                }
                ConnState::ReadClosed => false,
                // Poisoned connections keep reading to discard.
                ConnState::Discarding => true,
            };
        let desired = Interest {
            readable,
            writable: conn.wbuf_pending() > 0,
        };
        if desired != conn.interest {
            let fd = conn.stream.as_raw_fd();
            conn.interest = desired;
            if self.poller.modify(fd, token, desired).is_err() {
                self.close(token);
            }
        }
    }

    /// The per-tick sweep: progress stalled connections and enforce
    /// every deadline.
    fn tick(&mut self, now: Instant, read_deadline: Option<Instant>) {
        let read_timeout = self.shared.config.read_timeout;
        let write_timeout = self.shared.config.write_timeout;
        let quiet_window = 2 * self.shared.config.poll_interval;
        let draining = read_deadline.is_some();

        for token in 0..self.conns.slots.len() {
            if self.conns.get_mut(token).is_none() {
                continue;
            }
            // Backstop for anything the eager paths missed: buffered
            // lines and completed slots all make progress here too.
            self.process(token, now);

            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            let idle = conn.slots.is_empty() && conn.wbuf_pending() == 0;
            match conn.state {
                ConnState::Open => {
                    if draining && !self.reads_allowed && idle && !conn.has_complete_line() {
                        // Shutdown drain complete for this connection.
                        self.close(token);
                        continue;
                    }
                    if !draining && idle && now.duration_since(conn.last_activity) >= read_timeout {
                        // Idle disconnect: only between round trips —
                        // in-flight work holds the connection open.
                        self.close(token);
                        continue;
                    }
                }
                ConnState::ReadClosed => {
                    if idle && !conn.has_complete_line() {
                        self.close(token);
                        continue;
                    }
                }
                ConnState::Discarding => {
                    if idle && !conn.sent_fin {
                        // The error line is on the wire. Closing with
                        // unread bytes pending would raise an RST that
                        // can destroy it, so half-close and keep
                        // discarding the client's stream.
                        let _ = conn.stream.shutdown(std::net::Shutdown::Write);
                        conn.sent_fin = true;
                    }
                    let deadline_passed = conn.discard_deadline.is_some_and(|d| now >= d);
                    let quiet = conn.sent_fin
                        && now.duration_since(conn.last_read_progress) >= quiet_window;
                    if deadline_passed || quiet || (draining && !self.reads_allowed && idle) {
                        self.close(token);
                        continue;
                    }
                }
            }
            let Some(conn) = self.conns.get_mut(token) else {
                continue;
            };
            if conn.wbuf_pending() > 0
                && now.duration_since(conn.last_write_progress) >= write_timeout
            {
                // The client stopped draining its socket mid-response.
                self.close(token);
            }
        }
    }
}

/// Accept-side handle to one loop: where new connections and wakes go.
pub(crate) struct LoopHandle {
    pub(crate) tx: Sender<LoopMsg>,
    pub(crate) waker: Arc<Waker>,
}

impl LoopHandle {
    /// Hand a connection to the loop; returns it on failure (loop
    /// gone) so the caller can account the rejection.
    pub(crate) fn send_conn(&self, stream: TcpStream) -> Result<(), TcpStream> {
        match self.tx.send(LoopMsg::Conn(stream)) {
            Ok(()) => {
                self.waker.wake();
                Ok(())
            }
            Err(e) => match e.0 {
                LoopMsg::Conn(stream) => Err(stream),
                // send() returns the exact message we passed in.
                LoopMsg::Done { .. } => unreachable!("send_conn only sends Conn"),
            },
        }
    }
}
