//! Slow and misbehaving clients against the event-loop core. The
//! property under test is always the same: one bad connection may get
//! itself disconnected, but it must never stall, starve, or block the
//! other connections its loop owns — no loop ever blocks on a socket.

use seesaw_core::protocol::{MethodSpec, Request, Response};
use seesaw_core::{PreprocessConfig, Preprocessor, SearchService};
use seesaw_dataset::{DatasetSpec, SyntheticDataset};
use seesaw_server::{Client, Server, ServerConfig};
use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service(seed: u64) -> (Arc<SyntheticDataset>, Arc<SearchService>) {
    let ds = Arc::new(
        DatasetSpec::coco_like(0.001)
            .with_max_queries(8)
            .generate(seed),
    );
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&ds);
    let service = Arc::new(SearchService::new(index, Arc::clone(&ds)));
    (ds, service)
}

/// Wait (bounded) until the server's open-connection count drops to
/// `want` — connection teardown is asynchronous to the client's view.
fn await_open_connections(server: &Server, want: usize, why: &str) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.open_connections() > want {
        assert!(
            Instant::now() < deadline,
            "{why}: still {} connections open (wanted ≤ {want})",
            server.open_connections()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// A slowloris writer trickles one request in byte-sized writes with
/// delays. With one blocking thread per connection this monopolized a
/// handler; the event loop must keep serving a concurrent fast client
/// at full speed, and still answer the slow request once it finally
/// arrives in full.
#[test]
fn slowloris_writer_does_not_stall_other_connections() {
    let (ds, service) = service(31);
    // One event loop on purpose: the slow and fast connections *share*
    // a loop thread, so any blocking would show up as stalls.
    let server = Server::bind(
        service,
        "127.0.0.1:0",
        ServerConfig::default().with_event_loops(1),
    )
    .unwrap();
    let addr = server.local_addr();
    let concept = ds.queries()[0].concept;

    let slow = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(addr).unwrap();
        let line = Request::Stats { session: 999 }.encode() + "\n";
        for byte in line.as_bytes() {
            stream.write_all(std::slice::from_ref(byte)).unwrap();
            stream.flush().unwrap();
            std::thread::sleep(Duration::from_millis(10));
        }
        // The trickled request is complete now; it must be answered.
        let mut reader = std::io::BufReader::new(stream);
        let mut reply = String::new();
        std::io::BufRead::read_line(&mut reader, &mut reply).unwrap();
        let decoded = Response::decode(reply.trim_end()).unwrap();
        // Session 999 never existed — but the error must be a real,
        // well-formed answer to the slowly assembled line.
        assert!(
            matches!(decoded, Response::Error { .. }),
            "unexpected reply to the trickled request: {reply}"
        );
    });

    // Meanwhile, a fast client runs full round trips on the same loop.
    // ~50 round trips comfortably overlap the ~40 byte-writes above.
    let mut client = Client::connect(addr).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let session = client.create(concept, MethodSpec::SeeSaw, None).unwrap();
    let mut slowest = Duration::ZERO;
    for _ in 0..50 {
        let t0 = Instant::now();
        let (_, _, drift) = client.stats(session).unwrap();
        assert!(drift.is_finite());
        slowest = slowest.max(t0.elapsed());
    }
    client.close(session).unwrap();
    // Generous bound — the point is "milliseconds, not the 400 ms the
    // slowloris takes to finish its line".
    assert!(
        slowest < Duration::from_millis(250),
        "fast client stalled behind the slowloris: slowest round trip {slowest:?}"
    );

    slow.join().unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 2);
}

/// A client that pipelines requests but never reads a byte of the
/// responses. Its responses back up (kernel buffer, then the server's
/// per-connection write buffer), write backpressure stops its reads,
/// and the stalled write side eventually gets it disconnected — while
/// a well-behaved client on the same single loop keeps being served
/// throughout.
#[test]
fn client_that_never_reads_is_shed_without_blocking_the_loop() {
    let (ds, service) = service(37);
    let server = Server::bind(
        service,
        "127.0.0.1:0",
        ServerConfig::default()
            .with_event_loops(1)
            .with_queue_depth(512)
            // Short stall timeout so the test observes the disconnect.
            .with_write_timeout(Duration::from_millis(300)),
    )
    .unwrap();
    let addr = server.local_addr();
    let concept = ds.queries()[0].concept;

    // The misbehaving connection: a raw socket that firehoses requests
    // and never reads a byte back. Unknown-session errors are fine —
    // every request must still produce a response, and those responses
    // have nowhere to go. A bounded write timeout ends the firehose
    // once the server's backpressure stops reading us (this test must
    // not itself block forever — that is the server's failure mode,
    // not its test's).
    let mut bad = TcpStream::connect(addr).unwrap();
    bad.set_write_timeout(Some(Duration::from_millis(500)))
        .unwrap();
    let line = Request::NextBatch {
        session: 424242,
        n: 64,
    }
    .encode()
        + "\n";
    let burst = line.repeat(16);
    let mut sent = 0usize;
    while sent < 2 * 1024 * 1024 {
        match bad.write(burst.as_bytes()) {
            Ok(n) => sent += n,
            // Timeout: the server stopped reading us (write-buffer
            // backpressure) and every kernel buffer in between is
            // full. Or the server already disconnected us — either
            // way the firehose has done its job.
            Err(_) => break,
        }
    }
    assert!(
        sent > 0,
        "firehose never got a byte in — setup problem, not backpressure"
    );
    // ...and from here on it reads nothing, ever.

    // The good client shares the loop and must not notice.
    let mut good = Client::connect(addr).unwrap();
    good.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let session = good.create(concept, MethodSpec::SeeSaw, None).unwrap();
    for _ in 0..30 {
        let t0 = Instant::now();
        good.stats(session).unwrap();
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "good client starved behind the non-reading client"
        );
    }
    good.close(session).unwrap();

    // The non-reader must be forcibly disconnected (write stall), not
    // serviced forever into an unbounded buffer.
    await_open_connections(&server, 1, "non-reading client was never shed");

    // Both clients hang up; the loop must release every slot.
    drop(bad);
    drop(good);
    await_open_connections(&server, 0, "client teardown");
    server.shutdown();
}

/// A client that dies mid-line: the half request must be discarded
/// (never answered, never counted) and the connection torn down
/// promptly on the hangup — no timeout wait, no leaked slot.
#[test]
fn mid_line_disconnect_cleans_up_without_a_response() {
    let (ds, service) = service(41);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = server.local_addr();
    let concept = ds.queries()[0].concept;

    // A complete round trip first, so served-count bookkeeping below
    // has a known baseline even while the killer connection overlaps.
    let mut client = Client::connect(addr).unwrap();
    let session = client.create(concept, MethodSpec::SeeSaw, None).unwrap();

    {
        let mut dying = TcpStream::connect(addr).unwrap();
        // Half a request: valid JSON prefix, no terminating newline.
        dying.write_all(br#"{"type":"stats","session"#).unwrap();
        dying.flush().unwrap();
        std::thread::sleep(Duration::from_millis(50));
        // Dropped here: FIN lands with a partial line still buffered.
    }

    await_open_connections(&server, 1, "mid-line disconnect leaked its connection");

    // The surviving client still works on its same connection.
    let (shown, _, _) = client.stats(session).unwrap();
    assert_eq!(shown, 0);
    client.close(session).unwrap();

    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 2);
    // create + stats + close — and *not* the half request.
    assert_eq!(
        stats.requests_served, 3,
        "a never-completed line must not be answered or counted"
    );
}
