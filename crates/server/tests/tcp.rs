//! Integration tests for the TCP serving layer: every test binds an
//! ephemeral port on loopback and talks to the server over real
//! sockets — framing, backpressure, limits, and graceful shutdown are
//! all exercised end to end.

use seesaw_core::protocol::{ErrorCode, MethodSpec, Request, Response, MAX_LINE_BYTES};
use seesaw_core::{Batch, PreprocessConfig, Preprocessor, SearchService};
use seesaw_dataset::{DatasetSpec, SyntheticDataset};
use seesaw_server::{Client, ClientError, Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn service(seed: u64) -> (Arc<SyntheticDataset>, Arc<SearchService>) {
    let ds = Arc::new(
        DatasetSpec::coco_like(0.001)
            .with_max_queries(8)
            .generate(seed),
    );
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&ds);
    let service = Arc::new(SearchService::new(index, Arc::clone(&ds)));
    (ds, service)
}

#[test]
fn full_protocol_round_trip_over_a_real_socket() {
    let (ds, service) = service(11);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let concept = ds.queries()[0].concept;

    let mut client = Client::connect(server.local_addr()).unwrap();
    let session = client.create(concept, MethodSpec::SeeSaw, None).unwrap();
    let Batch::Images(images) = client.next_batch(session, 2).unwrap() else {
        panic!("fresh session cannot be exhausted");
    };
    assert_eq!(images.len(), 2);
    for &image in &images {
        client.feedback(session, image, true, vec![]).unwrap();
    }
    let (shown, fed, drift) = client.stats(session).unwrap();
    assert_eq!(shown, 2);
    assert_eq!(fed, 2);
    assert!(drift.is_finite());
    client.close(session).unwrap();

    // Typed errors cross the wire typed: stats on the closed session.
    match client.stats(session) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::SessionClosed),
        other => panic!("expected a typed server error, got {other:?}"),
    }

    let stats = server.shutdown();
    assert_eq!(stats.connections_accepted, 1);
    assert_eq!(stats.requests_served, 7);
    assert_eq!(stats.requests_rejected_saturated, 0);
}

#[test]
fn garbage_empty_and_crlf_lines_are_answered_in_band() {
    let (ds, service) = service(13);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let mut client = Client::connect(server.local_addr()).unwrap();

    // Garbage gets a protocol error, and the connection survives.
    let reply = client.call_line("not json").unwrap();
    let Response::Error { code, .. } = Response::decode(&reply).unwrap() else {
        panic!("garbage must yield an error, got {reply}");
    };
    assert_eq!(code, ErrorCode::Protocol);

    // An empty line is the pinned framing error, not a hang-up.
    let reply = client.call_line("").unwrap();
    assert_eq!(
        reply,
        r#"{"type":"error","code":"protocol","message":"empty request line"}"#
    );

    // \r\n framing: the client's \r survives to the server, which must
    // treat it as whitespace.
    let line = Request::Create {
        concept: ds.queries()[0].concept,
        method: MethodSpec::ZeroShot,
        search_k: None,
    }
    .encode()
        + "\r";
    let reply = client.call_line(&line).unwrap();
    assert!(
        matches!(Response::decode(&reply).unwrap(), Response::Created { .. }),
        "got {reply}"
    );

    drop(client);
    server.shutdown();
}

#[test]
fn oversized_line_is_rejected_before_a_newline_ever_arrives() {
    let (_ds, service) = service(17);
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default()).unwrap();

    let mut stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    // A line that can never terminate validly: > MAX_LINE_BYTES with
    // no newline. The server must answer with a protocol error and
    // close instead of buffering without bound.
    let blob = vec![b'x'; MAX_LINE_BYTES + 4096];
    stream.write_all(&blob).unwrap();

    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let Response::Error { code, message } = Response::decode(reply.trim_end()).unwrap() else {
        panic!("expected an error, got {reply}");
    };
    assert_eq!(code, ErrorCode::Protocol);
    assert!(message.contains("exceeds"), "got {message:?}");

    // And the server hangs up: EOF, not more protocol.
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty());

    server.shutdown();
}

#[test]
fn saturation_sheds_load_with_overloaded_errors_not_queueing() {
    const CLIENTS: usize = 8;
    const ROUNDS: usize = 20;
    let (ds, service) = service(19);
    // One worker and a one-slot queue: with eight clients hammering,
    // submissions must collide and the overflow must come back as
    // `overloaded` — while every line still gets exactly one reply.
    let config = ServerConfig::default().with_workers(1).with_queue_depth(1);
    let server = Server::bind(service, "127.0.0.1:0", config).unwrap();
    let addr = server.local_addr();

    let outcomes: Vec<(usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|c| {
                let concept = ds.queries()[c % ds.queries().len()].concept;
                scope.spawn(move || {
                    let mut client = Client::connect(addr).unwrap();
                    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
                    let mut served = 0usize;
                    let mut shed = 0usize;
                    for _ in 0..ROUNDS {
                        // Raw call: rejection is a valid, expected reply.
                        let reply = client
                            .call(&Request::Create {
                                concept,
                                method: MethodSpec::ZeroShot,
                                search_k: None,
                            })
                            .expect("every line gets one well-formed reply");
                        match reply {
                            Response::Created { session } => {
                                served += 1;
                                // Keep the worker busy so collisions
                                // stay likely, then clean up.
                                match client.call(&Request::NextBatch { session, n: 4 }) {
                                    Ok(Response::Batch { .. } | Response::Exhausted) => {
                                        served += 1;
                                    }
                                    Ok(Response::Error {
                                        code: ErrorCode::Overloaded,
                                        ..
                                    }) => shed += 1,
                                    other => panic!("unexpected: {other:?}"),
                                }
                                match client.call(&Request::Close { session }) {
                                    Ok(Response::Ack) => served += 1,
                                    Ok(Response::Error {
                                        code: ErrorCode::Overloaded,
                                        ..
                                    }) => shed += 1,
                                    other => panic!("unexpected: {other:?}"),
                                }
                            }
                            Response::Error {
                                code: ErrorCode::Overloaded,
                                ..
                            } => shed += 1,
                            other => panic!("unexpected: {other:?}"),
                        }
                    }
                    (served, shed)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let served: usize = outcomes.iter().map(|&(s, _)| s).sum();
    let shed: usize = outcomes.iter().map(|&(_, r)| r).sum();
    assert!(served > 0, "some requests must get through");
    assert!(
        shed > 0,
        "8 clients against 1 worker + 1 queue slot must saturate at least once"
    );
    let stats = server.shutdown();
    assert_eq!(stats.requests_rejected_saturated, shed as u64);
    assert_eq!(stats.requests_served, (served + shed) as u64);
}

#[test]
fn graceful_shutdown_answers_every_pipelined_in_flight_request() {
    const PIPELINED: usize = 30;
    let (ds, service) = service(23);
    let config = ServerConfig::default().with_workers(1).with_queue_depth(64);
    let server = Server::bind(service, "127.0.0.1:0", config).unwrap();

    let mut client = Client::connect(server.local_addr()).unwrap();
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let session = client
        .create(ds.queries()[0].concept, MethodSpec::SeeSaw, None)
        .unwrap();

    // Pipeline a burst of requests without reading any responses, so
    // most are still in flight (socket buffer or worker queue) when
    // shutdown lands. One round trip first: the drain guarantee covers
    // *accepted* connections, so prove this one is past the listener
    // backlog before racing it against shutdown.
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    {
        let mut line = Request::Stats { session }.encode();
        line.push('\n');
        raw.write_all(line.as_bytes()).unwrap();
        let mut first = String::new();
        BufReader::new(raw.try_clone().unwrap())
            .read_line(&mut first)
            .unwrap();
        assert!(
            matches!(
                Response::decode(first.trim_end()).unwrap(),
                Response::Stats { .. }
            ),
            "got {first}"
        );
    }
    let mut burst = String::new();
    for _ in 0..PIPELINED {
        burst.push_str(&Request::Stats { session }.encode());
        burst.push('\n');
    }
    raw.write_all(burst.as_bytes()).unwrap();

    // Shut down while the burst is (very likely) mid-stream. The drain
    // guarantee makes the outcome deterministic either way: every one
    // of the PIPELINED fully-written lines gets a response before EOF.
    let stats = server.shutdown();

    let mut reader = BufReader::new(raw);
    let mut replies = 0usize;
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).unwrap();
        if n == 0 {
            break; // clean EOF — no partial line
        }
        assert!(line.ends_with('\n'), "torn response line: {line:?}");
        let decoded = Response::decode(line.trim_end()).expect("well-formed response");
        assert!(
            matches!(decoded, Response::Stats { .. }),
            "wrong reply: {decoded:?}"
        );
        replies += 1;
    }
    assert_eq!(
        replies, PIPELINED,
        "graceful shutdown must answer every received request"
    );
    // The burst, the session-setup create, and the accept-proof stats.
    assert_eq!(stats.requests_served as usize, PIPELINED + 2);
}

#[test]
fn connection_cap_rejects_with_an_overloaded_line() {
    let (ds, service) = service(29);
    let config = ServerConfig::default().with_max_connections(2);
    let server = Server::bind(service, "127.0.0.1:0", config).unwrap();
    let concept = ds.queries()[0].concept;

    // Two live connections, each proven active by a round trip.
    let mut a = Client::connect(server.local_addr()).unwrap();
    let sa = a.create(concept, MethodSpec::ZeroShot, None).unwrap();
    let mut b = Client::connect(server.local_addr()).unwrap();
    b.create(concept, MethodSpec::ZeroShot, None).unwrap();

    // The third is turned away in-band and closed.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    let Response::Error { code, .. } = Response::decode(line.trim_end()).unwrap() else {
        panic!("expected overloaded, got {line}");
    };
    assert_eq!(code, ErrorCode::Overloaded);
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).unwrap();
    assert!(rest.is_empty(), "rejected connection must be closed");

    // Closing one frees a slot (the handler notices EOF within a poll
    // tick); a new connection then serves normally.
    drop(b);
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut c = loop {
        let mut c = Client::connect(server.local_addr()).unwrap();
        c.set_timeout(Some(Duration::from_secs(10))).unwrap();
        match c.create(concept, MethodSpec::ZeroShot, None) {
            Ok(_) => break c,
            Err(ClientError::Server {
                code: ErrorCode::Overloaded,
                ..
            })
            | Err(ClientError::Io(_)) => {
                assert!(
                    Instant::now() < deadline,
                    "slot never freed after client b closed"
                );
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected failure: {e}"),
        }
    };
    // Both live connections still work.
    a.stats(sa).unwrap();
    c.call_line("").unwrap();

    let stats = server.shutdown();
    assert!(stats.connections_rejected >= 1);
}

#[test]
fn idle_connections_are_closed_after_the_read_timeout() {
    let (_ds, service) = service(31);
    let config = ServerConfig::default().with_read_timeout(Duration::from_millis(150));
    let server = Server::bind(service, "127.0.0.1:0", config).unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    let started = Instant::now();
    let mut reader = BufReader::new(stream);
    let mut buf = Vec::new();
    reader.read_to_end(&mut buf).unwrap(); // EOF when the server hangs up
    assert!(buf.is_empty());
    let elapsed = started.elapsed();
    assert!(
        elapsed >= Duration::from_millis(100),
        "closed suspiciously fast: {elapsed:?}"
    );
    assert!(
        elapsed < Duration::from_secs(8),
        "idle timeout never fired: {elapsed:?}"
    );
    server.shutdown();
}
