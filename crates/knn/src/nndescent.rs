//! NN-descent (Dong, Moses & Li, WWW 2011): approximate kNN graph
//! construction by iterated local joins.
//!
//! The idea: "a neighbour of a neighbour is likely a neighbour". Start
//! from random neighbour lists; each round, for every node, compare the
//! node's *new* neighbours (forward and reverse) against its full
//! candidate set and keep the closest `k`. Converges in a handful of
//! rounds with `O(n·k²)` work per round — no quadratic scan.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seesaw_linalg::squared_euclidean;

use crate::graph::KnnGraph;

/// Tuning for [`KnnGraph::nn_descent`].
#[derive(Clone, Debug)]
pub struct NnDescentConfig {
    /// Sampling rate ρ of old neighbours per round (Dong et al. use 0.5
    /// or 1.0).
    pub sample_rate: f64,
    /// Stop when fewer than `delta · n · k` updates happen in a round.
    pub delta: f64,
    /// Hard cap on rounds.
    pub max_rounds: usize,
    /// RNG seed for initialization and sampling.
    pub seed: u64,
}

impl Default for NnDescentConfig {
    fn default() -> Self {
        Self {
            sample_rate: 1.0,
            delta: 0.002,
            max_rounds: 12,
            seed: 0xdecc,
        }
    }
}

/// One entry in a node's neighbour heap.
#[derive(Clone, Copy, Debug)]
struct Entry {
    dist2: f32,
    id: u32,
    is_new: bool,
}

/// A bounded nearest-first neighbour list.
struct NeighborList {
    entries: Vec<Entry>,
    cap: usize,
}

impl NeighborList {
    fn new(cap: usize) -> Self {
        Self {
            entries: Vec::with_capacity(cap + 1),
            cap,
        }
    }

    /// Insert if closer than the current worst; returns whether the list
    /// changed.
    fn try_insert(&mut self, cand: Entry) -> bool {
        if self.entries.iter().any(|e| e.id == cand.id) {
            return false;
        }
        if self.entries.len() == self.cap
            && cand.dist2
                >= self
                    .entries
                    .last()
                    .map(|e| e.dist2)
                    .unwrap_or(f32::INFINITY)
        {
            return false;
        }
        let pos = self
            .entries
            .binary_search_by(|e| e.dist2.total_cmp(&cand.dist2))
            .unwrap_or_else(|e| e);
        self.entries.insert(pos, cand);
        if self.entries.len() > self.cap {
            self.entries.pop();
        }
        true
    }
}

impl KnnGraph {
    /// Build an approximate kNN graph with NN-descent.
    ///
    /// # Panics
    /// Panics on an invalid `k` or a buffer that is not a multiple of
    /// `dim`.
    pub fn nn_descent(dim: usize, data: &[f32], k: usize, cfg: &NnDescentConfig) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "buffer is not a multiple of dim");
        let n = data.len() / dim;
        assert!(k > 0, "k must be positive");
        assert!(k < n, "k = {k} must be below the item count {n}");

        // Small datasets: the exact scan is cheaper and exact.
        if n <= 512 || n <= 4 * k {
            return KnnGraph::brute_force(dim, data, k);
        }

        let vec_of = |i: usize| &data[i * dim..(i + 1) * dim];
        let mut rng = StdRng::seed_from_u64(cfg.seed);

        // Random initialization.
        let mut lists: Vec<NeighborList> = (0..n).map(|_| NeighborList::new(k)).collect();
        for (i, list) in lists.iter_mut().enumerate() {
            while list.entries.len() < k {
                let j = rng.gen_range(0..n);
                if j == i {
                    continue;
                }
                let d2 = squared_euclidean(vec_of(i), vec_of(j));
                list.try_insert(Entry {
                    dist2: d2,
                    id: j as u32,
                    is_new: true,
                });
            }
        }

        let stop_threshold = (cfg.delta * n as f64 * k as f64).max(1.0) as usize;
        for _round in 0..cfg.max_rounds {
            // Partition each node's forward neighbours into new/old and
            // build the reverse lists.
            let mut fwd_new: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut fwd_old: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut rev_new: Vec<Vec<u32>> = vec![Vec::new(); n];
            let mut rev_old: Vec<Vec<u32>> = vec![Vec::new(); n];
            for i in 0..n {
                for e in lists[i].entries.iter() {
                    if e.is_new && rng.gen_bool(cfg.sample_rate) {
                        fwd_new[i].push(e.id);
                        rev_new[e.id as usize].push(i as u32);
                    } else {
                        fwd_old[i].push(e.id);
                        rev_old[e.id as usize].push(i as u32);
                    }
                }
            }
            // Mark sampled-new entries as old for the next round.
            for list in lists.iter_mut() {
                for e in list.entries.iter_mut() {
                    e.is_new = false;
                }
            }

            let cap_rev = 2 * k; // bound reverse lists like the paper's ρK
            let mut updates = 0usize;
            let mut news: Vec<u32> = Vec::new();
            let mut olds: Vec<u32> = Vec::new();
            for i in 0..n {
                news.clear();
                olds.clear();
                news.extend_from_slice(&fwd_new[i]);
                for &r in rev_new[i].iter().take(cap_rev) {
                    if !news.contains(&r) {
                        news.push(r);
                    }
                }
                olds.extend_from_slice(&fwd_old[i]);
                for &r in rev_old[i].iter().take(cap_rev) {
                    if !olds.contains(&r) {
                        olds.push(r);
                    }
                }
                // Local join: new×new and new×old.
                for (ai, &a) in news.iter().enumerate() {
                    for &b in news.iter().skip(ai + 1) {
                        updates += join(&mut lists, vec_of, a, b);
                    }
                    for &b in olds.iter() {
                        updates += join(&mut lists, vec_of, a, b);
                    }
                }
            }
            if updates < stop_threshold {
                break;
            }
        }

        let mut neighbors = vec![0u32; n * k];
        let mut distances = vec![0.0f32; n * k];
        for (i, list) in lists.iter().enumerate() {
            debug_assert_eq!(list.entries.len(), k);
            for (slot, e) in list.entries.iter().enumerate() {
                neighbors[i * k + slot] = e.id;
                distances[i * k + slot] = e.dist2.sqrt();
            }
        }
        KnnGraph::from_rows(n, k, neighbors, distances)
    }
}

/// Try the candidate pair `(a, b)` in both directions; returns the
/// number of successful insertions.
fn join<'a, F>(lists: &mut [NeighborList], vec_of: F, a: u32, b: u32) -> usize
where
    F: Fn(usize) -> &'a [f32],
{
    if a == b {
        return 0;
    }
    let d2 = squared_euclidean(vec_of(a as usize), vec_of(b as usize));
    let mut updates = 0;
    if lists[a as usize].try_insert(Entry {
        dist2: d2,
        id: b,
        is_new: true,
    }) {
        updates += 1;
    }
    if lists[b as usize].try_insert(Entry {
        dist2: d2,
        id: a,
        is_new: true,
    }) {
        updates += 1;
    }
    updates
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use seesaw_linalg::random_unit_vector;

    fn random_data(n: usize, dim: usize, seed: u64) -> Vec<f32> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = Vec::with_capacity(n * dim);
        for _ in 0..n {
            data.extend_from_slice(&random_unit_vector(&mut rng, dim));
        }
        data
    }

    #[test]
    fn small_input_uses_exact_graph() {
        let data = random_data(100, 8, 1);
        let nnd = KnnGraph::nn_descent(8, &data, 5, &NnDescentConfig::default());
        let exact = KnnGraph::brute_force(8, &data, 5);
        assert_eq!(nnd.edge_recall_against(&exact), 1.0);
    }

    #[test]
    fn recall_is_high_on_clustered_data() {
        // Clustered data is the regime NN-descent excels in — and the
        // regime embeddings live in.
        let mut rng = StdRng::seed_from_u64(2);
        let dim = 16;
        let centers: Vec<Vec<f32>> = (0..8).map(|_| random_unit_vector(&mut rng, dim)).collect();
        let mut data = Vec::new();
        for i in 0..1500 {
            let c = &centers[i % centers.len()];
            let mut v = c.clone();
            let noise = random_unit_vector(&mut rng, dim);
            for (vj, nj) in v.iter_mut().zip(noise.iter()) {
                *vj += 0.15 * nj;
            }
            seesaw_linalg::normalize(&mut v);
            data.extend_from_slice(&v);
        }
        let nnd = KnnGraph::nn_descent(dim, &data, 10, &NnDescentConfig::default());
        let exact = KnnGraph::brute_force(dim, &data, 10);
        let recall = nnd.edge_recall_against(&exact);
        assert!(recall > 0.85, "recall {recall}");
    }

    #[test]
    fn deterministic_given_seed() {
        let data = random_data(900, 8, 3);
        let cfg = NnDescentConfig::default();
        let a = KnnGraph::nn_descent(8, &data, 6, &cfg);
        let b = KnnGraph::nn_descent(8, &data, 6, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn all_rows_are_full_and_self_free() {
        let data = random_data(800, 8, 4);
        let g = KnnGraph::nn_descent(8, &data, 7, &NnDescentConfig::default());
        for i in 0..g.len() {
            let nb = g.neighbors_of(i);
            assert_eq!(nb.len(), 7);
            assert!(!nb.contains(&(i as u32)), "node {i} lists itself");
            let mut uniq = nb.to_vec();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), 7, "node {i} has duplicate neighbors");
        }
    }
}
