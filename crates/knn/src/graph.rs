//! The kNN graph container and its exact (brute-force) constructor.

use seesaw_linalg::squared_euclidean;

/// Summary statistics of a kNN graph's edge-length distribution.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GraphStats {
    /// Node count.
    pub nodes: usize,
    /// Neighbours per node.
    pub k: usize,
    /// Mean edge length.
    pub mean_distance: f32,
    /// Median edge length.
    pub p50_distance: f32,
    /// 90th-percentile edge length.
    pub p90_distance: f32,
}

/// A directed kNN graph: for every node, its `k` (approximately) nearest
/// neighbours by Euclidean distance, sorted nearest-first.
#[derive(Clone, Debug, PartialEq)]
pub struct KnnGraph {
    n: usize,
    k: usize,
    /// `n × k` neighbour ids, row-major.
    neighbors: Vec<u32>,
    /// `n × k` Euclidean distances matching `neighbors`.
    distances: Vec<f32>,
}

impl KnnGraph {
    /// Assemble from parallel per-node rows (used by the constructors
    /// and by tests).
    pub(crate) fn from_rows(n: usize, k: usize, neighbors: Vec<u32>, distances: Vec<f32>) -> Self {
        assert_eq!(neighbors.len(), n * k);
        assert_eq!(distances.len(), n * k);
        Self {
            n,
            k,
            neighbors,
            distances,
        }
    }

    /// Exact kNN graph by full pairwise scan — `O(n²·d)`; the reference
    /// for NN-descent recall and fine for small datasets.
    ///
    /// # Panics
    /// Panics when `k` is zero or not smaller than the item count, or
    /// when `data` is not a multiple of `dim`.
    pub fn brute_force(dim: usize, data: &[f32], k: usize) -> Self {
        assert!(dim > 0, "dimension must be positive");
        assert_eq!(data.len() % dim, 0, "buffer is not a multiple of dim");
        let n = data.len() / dim;
        assert!(k > 0, "k must be positive");
        assert!(k < n, "k = {k} must be below the item count {n}");
        let vec_of = |i: usize| &data[i * dim..(i + 1) * dim];
        let mut neighbors = vec![0u32; n * k];
        let mut distances = vec![0.0f32; n * k];
        let mut row: Vec<(f32, u32)> = Vec::with_capacity(n - 1);
        for i in 0..n {
            row.clear();
            for j in 0..n {
                if i == j {
                    continue;
                }
                row.push((squared_euclidean(vec_of(i), vec_of(j)), j as u32));
            }
            row.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
            for (slot, &(d2, j)) in row.iter().take(k).enumerate() {
                neighbors[i * k + slot] = j;
                distances[i * k + slot] = d2.sqrt();
            }
        }
        Self {
            n,
            k,
            neighbors,
            distances,
        }
    }

    /// Node count.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the graph has no nodes.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Neighbours per node.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Neighbour ids of node `i`, nearest first.
    #[inline]
    pub fn neighbors_of(&self, i: usize) -> &[u32] {
        &self.neighbors[i * self.k..(i + 1) * self.k]
    }

    /// Euclidean distances matching [`Self::neighbors_of`].
    #[inline]
    pub fn distances_of(&self, i: usize) -> &[f32] {
        &self.distances[i * self.k..(i + 1) * self.k]
    }

    /// Median neighbour distance over the whole graph (used by the
    /// adaptive sigma rule).
    pub fn median_distance(&self) -> f32 {
        if self.distances.is_empty() {
            return 0.0;
        }
        let mut all = self.distances.clone();
        all.sort_unstable_by(|a, b| a.total_cmp(b));
        all[all.len() / 2]
    }

    /// Distribution statistics of the graph — used by diagnostics and
    /// the preprocessing logs.
    pub fn stats(&self) -> GraphStats {
        let mut dists = self.distances.clone();
        dists.sort_unstable_by(|a, b| a.total_cmp(b));
        let pick = |q: f64| {
            if dists.is_empty() {
                0.0
            } else {
                dists[((dists.len() - 1) as f64 * q) as usize]
            }
        };
        GraphStats {
            nodes: self.n,
            k: self.k,
            mean_distance: if dists.is_empty() {
                0.0
            } else {
                dists.iter().sum::<f32>() / dists.len() as f32
            },
            p50_distance: pick(0.5),
            p90_distance: pick(0.9),
        }
    }

    /// Fraction of `(node, neighbour)` edges of `truth` that `self`
    /// also contains — the standard NN-descent quality metric.
    pub fn edge_recall_against(&self, truth: &KnnGraph) -> f64 {
        assert_eq!(self.n, truth.n, "graph size mismatch");
        let k = self.k.min(truth.k);
        if self.n == 0 || k == 0 {
            return 1.0;
        }
        let mut hit = 0usize;
        for i in 0..self.n {
            let mine = self.neighbors_of(i);
            for &t in truth.neighbors_of(i).iter().take(k) {
                if mine.contains(&t) {
                    hit += 1;
                }
            }
        }
        hit as f64 / (self.n * k) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Four points on a line: 0.0, 1.0, 1.1, 5.0 (dim 1).
    fn line_data() -> Vec<f32> {
        vec![0.0, 1.0, 1.1, 5.0]
    }

    #[test]
    fn brute_force_finds_true_neighbors() {
        let g = KnnGraph::brute_force(1, &line_data(), 2);
        assert_eq!(g.neighbors_of(0), &[1, 2]); // 1.0 then 1.1
        assert_eq!(g.neighbors_of(1), &[2, 0]); // 0.1 then 1.0
        assert_eq!(g.neighbors_of(3), &[2, 1]);
        assert!((g.distances_of(1)[0] - 0.1).abs() < 1e-5);
    }

    #[test]
    fn distances_are_sorted() {
        let g = KnnGraph::brute_force(1, &line_data(), 3);
        for i in 0..g.len() {
            let d = g.distances_of(i);
            for w in d.windows(2) {
                assert!(w[0] <= w[1]);
            }
        }
    }

    #[test]
    fn recall_of_identical_graph_is_one() {
        let g = KnnGraph::brute_force(1, &line_data(), 2);
        assert_eq!(g.edge_recall_against(&g), 1.0);
    }

    #[test]
    fn median_distance_is_sane() {
        let g = KnnGraph::brute_force(1, &line_data(), 1);
        let m = g.median_distance();
        assert!(m > 0.0 && m < 4.0);
    }

    #[test]
    #[should_panic(expected = "k = 4 must be below")]
    fn k_too_large_panics() {
        let _ = KnnGraph::brute_force(1, &line_data(), 4);
    }

    #[test]
    fn stats_are_ordered_quantiles() {
        let g = KnnGraph::brute_force(1, &line_data(), 2);
        let s = g.stats();
        assert_eq!(s.nodes, 4);
        assert_eq!(s.k, 2);
        assert!(s.mean_distance > 0.0);
        assert!(s.p50_distance <= s.p90_distance);
    }
}
