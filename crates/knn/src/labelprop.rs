//! Label propagation (Zhu & Ghahramani 2002).
//!
//! Given a few labeled nodes and the weighted kNN adjacency, iterate
//! `ŷ ← D⁻¹ W ŷ`, clamping the labeled nodes, until convergence. The
//! fixed point minimizes `Σ_ij w_ij (ŷ_i − ŷ_j)²` subject to the clamped
//! labels (the harmonic solution).
//!
//! In SeeSaw this algorithm is (a) the conceptual starting point for
//! database alignment (§4.2) and (b) the `prop.` latency comparator of
//! Table 6: it must run after every feedback round and touch the whole
//! graph, which is exactly why the paper replaces it with the `M_D`
//! regularizer.

use seesaw_linalg::CsrMatrix;

/// Convergence controls for [`propagate_labels`].
#[derive(Clone, Debug)]
pub struct LabelPropConfig {
    /// Maximum sweeps over the graph.
    pub max_iters: usize,
    /// Stop when the largest per-node change falls below this.
    pub tolerance: f32,
    /// Initial value for unlabeled nodes (the prior; positives are rare
    /// in search, so a small value is appropriate).
    pub unlabeled_init: f32,
}

impl Default for LabelPropConfig {
    fn default() -> Self {
        Self {
            max_iters: 30,
            tolerance: 1e-4,
            unlabeled_init: 0.0,
        }
    }
}

/// Propagate the clamped `labels` (node id, value in `[0, 1]`) over the
/// symmetric weighted adjacency. Returns the soft label of every node.
///
/// # Panics
/// Panics when the adjacency is not square or a label id is out of
/// bounds.
pub fn propagate_labels(
    adjacency: &CsrMatrix,
    labels: &[(u32, f32)],
    cfg: &LabelPropConfig,
) -> Vec<f32> {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    let n = adjacency.rows();
    let mut y = vec![cfg.unlabeled_init; n];
    let mut clamped = vec![false; n];
    for &(id, v) in labels {
        assert!((id as usize) < n, "label id {id} out of bounds");
        y[id as usize] = v;
        clamped[id as usize] = true;
    }
    if labels.is_empty() || n == 0 {
        return y;
    }
    let degrees = adjacency.row_sums();
    let mut next = y.clone();
    for _ in 0..cfg.max_iters {
        let mut max_delta = 0.0f32;
        for i in 0..n {
            if clamped[i] {
                next[i] = y[i];
                continue;
            }
            let d = degrees[i];
            if d <= 0.0 {
                next[i] = y[i];
                continue;
            }
            let mut acc = 0.0f32;
            for (j, w) in adjacency.row_iter(i) {
                acc += w * y[j as usize];
            }
            let v = acc / d;
            max_delta = max_delta.max((v - y[i]).abs());
            next[i] = v;
        }
        std::mem::swap(&mut y, &mut next);
        if max_delta < cfg.tolerance {
            break;
        }
    }
    y
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnnGraph;
    use crate::weights::{gaussian_adjacency, SigmaRule};

    /// Two tight clusters on a line with one label each.
    fn two_cluster_adjacency() -> CsrMatrix {
        let data = [0.0f32, 0.1, 0.2, 5.0, 5.1, 5.2];
        let g = KnnGraph::brute_force(1, &data, 2);
        gaussian_adjacency(&g, SigmaRule::MedianScale(1.0))
    }

    #[test]
    fn labels_spread_within_clusters() {
        let w = two_cluster_adjacency();
        let y = propagate_labels(&w, &[(0, 1.0), (3, 0.0)], &LabelPropConfig::default());
        // Cluster of node 0 should be near 1, cluster of node 3 near 0.
        assert!(y[1] > 0.8, "{y:?}");
        assert!(y[2] > 0.8, "{y:?}");
        assert!(y[4] < 0.2, "{y:?}");
        assert!(y[5] < 0.2, "{y:?}");
    }

    #[test]
    fn clamped_nodes_keep_their_labels() {
        let w = two_cluster_adjacency();
        let y = propagate_labels(&w, &[(0, 1.0), (3, 0.0)], &LabelPropConfig::default());
        assert_eq!(y[0], 1.0);
        assert_eq!(y[3], 0.0);
    }

    #[test]
    fn no_labels_returns_prior() {
        let w = two_cluster_adjacency();
        let cfg = LabelPropConfig {
            unlabeled_init: 0.25,
            ..Default::default()
        };
        let y = propagate_labels(&w, &[], &cfg);
        assert!(y.iter().all(|&v| v == 0.25));
    }

    #[test]
    fn values_stay_in_unit_interval() {
        let w = two_cluster_adjacency();
        let y = propagate_labels(&w, &[(0, 1.0), (5, 0.0)], &LabelPropConfig::default());
        for v in y {
            assert!((0.0..=1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn harmonic_property_at_fixed_point() {
        // At convergence, every unlabeled node equals the weighted mean
        // of its neighbours.
        let w = two_cluster_adjacency();
        let cfg = LabelPropConfig {
            max_iters: 500,
            tolerance: 1e-7,
            unlabeled_init: 0.0,
        };
        let y = propagate_labels(&w, &[(0, 1.0), (3, 0.0)], &cfg);
        let degrees = w.row_sums();
        for i in [1usize, 2, 4, 5] {
            let mut acc = 0.0f32;
            for (j, wij) in w.row_iter(i) {
                acc += wij * y[j as usize];
            }
            assert!((y[i] - acc / degrees[i]).abs() < 1e-3, "node {i}");
        }
    }
}
