//! k-nearest-neighbour graphs and label propagation (paper §4.2).
//!
//! Database alignment needs, once per dataset:
//!
//! 1. an approximate kNN graph over all embedding vectors — built with
//!    **NN-descent** (Dong et al. 2011), "an approximate but scalable
//!    way to compute a kNN graph over large datasets";
//! 2. Gaussian edge weights `w_ij = exp(−‖x_i − x_j‖² / 2σ²)` on the
//!    symmetrized graph, the degree matrix `D`, and the Laplacian
//!    `D − W`;
//! 3. (for the `prop.` variant of Table 6 and the conceptual grounding
//!    of §4.2) **label propagation** (Zhu & Ghahramani 2002): iterate
//!    `ŷ ← D⁻¹ W ŷ` with the user's labels clamped.

pub mod graph;
pub mod labelprop;
pub mod nndescent;
#[cfg(test)]
mod proptests;
pub mod weights;

pub use graph::{GraphStats, KnnGraph};
pub use labelprop::{propagate_labels, LabelPropConfig};
pub use nndescent::NnDescentConfig;
pub use weights::{gaussian_adjacency, laplacian, SigmaRule};
