//! Property-based tests for the graph pipeline.

#![cfg(test)]

use crate::graph::KnnGraph;
use crate::labelprop::{propagate_labels, LabelPropConfig};
use crate::weights::{gaussian_adjacency, laplacian, SigmaRule};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use seesaw_linalg::random_unit_vector;

fn random_flat(n: usize, dim: usize, seed: u64) -> Vec<f32> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(n * dim);
    for _ in 0..n {
        out.extend_from_slice(&random_unit_vector(&mut rng, dim));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn adjacency_is_symmetric_and_laplacian_rows_vanish(
        n in 6usize..60,
        seed in 0u64..500,
        k in 1usize..5,
    ) {
        prop_assume!(k < n);
        let data = random_flat(n, 6, seed);
        let g = KnnGraph::brute_force(6, &data, k);
        for sigma in [SigmaRule::Fixed(0.7), SigmaRule::MedianScale(1.0), SigmaRule::SelfTuning(1.0)] {
            let w = gaussian_adjacency(&g, sigma);
            prop_assert!(w.max_asymmetry() < 1e-5);
            let l = laplacian(&w);
            for row_sum in l.row_sums() {
                prop_assert!(row_sum.abs() < 1e-4, "laplacian row sum {row_sum}");
            }
        }
    }

    #[test]
    fn laplacian_quadratic_form_is_nonnegative(
        n in 6usize..40,
        seed in 0u64..300,
        probe_seed in 0u64..100,
    ) {
        let data = random_flat(n, 5, seed);
        let g = KnnGraph::brute_force(5, &data, 3.min(n - 1));
        let w = gaussian_adjacency(&g, SigmaRule::SelfTuning(1.0));
        let l = laplacian(&w).to_dense();
        let mut rng = StdRng::seed_from_u64(probe_seed);
        let y: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0f32..2.0)).collect();
        prop_assert!(l.quadratic_form(&y) >= -1e-3);
    }

    #[test]
    fn label_propagation_stays_in_label_hull(
        n in 8usize..50,
        seed in 0u64..300,
        lo in 0.0f32..0.4,
        hi in 0.6f32..1.0,
    ) {
        // With clamped labels in [lo, hi] and init inside the hull, every
        // propagated value stays inside [min(init, lo), hi] — averaging
        // cannot extrapolate.
        let data = random_flat(n, 4, seed);
        let g = KnnGraph::brute_force(4, &data, 3.min(n - 1));
        let w = gaussian_adjacency(&g, SigmaRule::SelfTuning(1.0));
        let labels = vec![(0u32, hi), (1u32, lo)];
        let cfg = LabelPropConfig {
            unlabeled_init: lo,
            ..LabelPropConfig::default()
        };
        let y = propagate_labels(&w, &labels, &cfg);
        for v in y {
            prop_assert!(v >= lo - 1e-5 && v <= hi + 1e-5, "{v} outside [{lo}, {hi}]");
        }
    }

    #[test]
    fn nn_descent_recall_is_reasonable_on_random_data(
        seed in 0u64..50,
    ) {
        // Uniform random data is NN-descent's worst case; recall should
        // still be non-trivial at moderate n.
        let data = random_flat(700, 8, seed);
        let approx = KnnGraph::nn_descent(8, &data, 6, &crate::NnDescentConfig::default());
        let exact = KnnGraph::brute_force(8, &data, 6);
        let recall = approx.edge_recall_against(&exact);
        prop_assert!(recall > 0.5, "recall {recall}");
    }
}
