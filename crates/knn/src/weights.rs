//! Gaussian edge weights, the symmetrized adjacency, and the graph
//! Laplacian `D − W` (paper §4.2, following Zhu & Ghahramani).

use seesaw_linalg::{CsrMatrix, Triplet};

use crate::graph::KnnGraph;

/// How the Gaussian bandwidth σ is chosen.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SigmaRule {
    /// Use the given σ directly for every edge (the paper's σ = .05 on
    /// CLIP): `w_ij = exp(−d_ij²/2σ²)`.
    Fixed(f32),
    /// Global σ = multiplier × (median neighbour distance). Adapts to
    /// the embedding geometry.
    MedianScale(f32),
    /// Self-tuning bandwidths (Zelnik-Manor & Perona 2004):
    /// `w_ij = exp(−d_ij²/(σ_i·σ_j))` with `σ_i` = multiplier × distance
    /// to `i`'s furthest kept neighbour. Down-weights "bridge" edges
    /// between dense regions and sparse background, which is exactly
    /// what the DB-alignment regularizer needs.
    SelfTuning(f32),
}

impl SigmaRule {
    /// Per-node bandwidths for a given graph.
    fn node_sigmas(&self, graph: &KnnGraph) -> Vec<f32> {
        let n = graph.len();
        match *self {
            SigmaRule::Fixed(s) => vec![s.max(1e-6); n],
            SigmaRule::MedianScale(m) => {
                vec![(m * graph.median_distance()).max(1e-6); n]
            }
            SigmaRule::SelfTuning(m) => (0..n)
                .map(|i| {
                    let d = graph.distances_of(i);
                    (m * d.last().copied().unwrap_or(0.0)).max(1e-6)
                })
                .collect(),
        }
    }

    /// Resolve to a single global σ when the rule is global; the median
    /// of per-node bandwidths otherwise (diagnostics).
    pub fn resolve(&self, graph: &KnnGraph) -> f32 {
        let mut sigmas = self.node_sigmas(graph);
        sigmas.sort_unstable_by(|a, b| a.total_cmp(b));
        sigmas.get(sigmas.len() / 2).copied().unwrap_or(1e-6)
    }
}

/// Build the symmetrized weighted adjacency `W` of the kNN graph with
/// Gaussian weights under the chosen bandwidth rule. An edge is present
/// when either endpoint lists the other; the weight depends only on the
/// distance and the two endpoints' bandwidths, so it is symmetric by
/// construction.
pub fn gaussian_adjacency(graph: &KnnGraph, sigma: SigmaRule) -> CsrMatrix {
    let n = graph.len();
    let sigmas = sigma.node_sigmas(graph);
    // For the global rules the denominator is 2σ² = σ·σ·2; write both as
    // σ_i·σ_j·scale with scale chosen per rule so Fixed/MedianScale keep
    // the textbook form.
    let scale = match sigma {
        SigmaRule::SelfTuning(_) => 1.0f64,
        _ => 2.0f64,
    };
    let mut triplets: Vec<Triplet> = Vec::with_capacity(n * graph.k() * 2);
    for i in 0..n {
        let nbrs = graph.neighbors_of(i);
        let dists = graph.distances_of(i);
        for (&j, &d) in nbrs.iter().zip(dists.iter()) {
            // Each undirected edge is emitted exactly once (plus its
            // mirror): when j also lists i, only the smaller endpoint
            // emits.
            if (j as usize) < i && graph.neighbors_of(j as usize).contains(&(i as u32)) {
                continue; // already emitted when we processed j
            }
            let denom = scale * sigmas[i] as f64 * sigmas[j as usize] as f64;
            let w = (-(d as f64) * (d as f64) / denom).exp() as f32;
            if w <= 0.0 {
                continue;
            }
            triplets.push(Triplet {
                row: i as u32,
                col: j,
                val: w,
            });
            triplets.push(Triplet {
                row: j,
                col: i as u32,
                val: w,
            });
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

/// The combinatorial Laplacian `L = D − W` of a symmetric weighted
/// adjacency. `wᵀ (Xᵀ L X) w = Σ_ij w_ij (s_i − s_j)²/2` penalizes score
/// variation across edges — the database-alignment regularizer.
pub fn laplacian(adjacency: &CsrMatrix) -> CsrMatrix {
    assert_eq!(
        adjacency.rows(),
        adjacency.cols(),
        "adjacency must be square"
    );
    let n = adjacency.rows();
    let degrees = adjacency.row_sums();
    let mut triplets: Vec<Triplet> = Vec::with_capacity(adjacency.nnz() + n);
    for (i, &d) in degrees.iter().enumerate() {
        if d != 0.0 {
            triplets.push(Triplet {
                row: i as u32,
                col: i as u32,
                val: d,
            });
        }
        for (j, w) in adjacency.row_iter(i) {
            triplets.push(Triplet {
                row: i as u32,
                col: j,
                val: -w,
            });
        }
    }
    CsrMatrix::from_triplets(n, n, &triplets)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::KnnGraph;

    fn line_graph() -> KnnGraph {
        // 0.0, 1.0, 1.1, 5.0 on a line; k = 1.
        KnnGraph::brute_force(1, &[0.0, 1.0, 1.1, 5.0], 1)
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = line_graph();
        let w = gaussian_adjacency(&g, SigmaRule::MedianScale(1.0));
        assert_eq!(w.max_asymmetry(), 0.0);
    }

    #[test]
    fn closer_pairs_get_larger_weights() {
        let g = line_graph();
        let w = gaussian_adjacency(&g, SigmaRule::Fixed(1.0));
        // (1,2) at distance .1 must outweigh (0,1) at distance 1.
        assert!(w.get(1, 2) > w.get(0, 1));
        assert!(w.get(1, 2) > 0.9);
    }

    #[test]
    fn laplacian_rows_sum_to_zero() {
        let g = line_graph();
        let w = gaussian_adjacency(&g, SigmaRule::MedianScale(1.0));
        let l = laplacian(&w);
        for sum in l.row_sums() {
            assert!(sum.abs() < 1e-5, "row sum {sum}");
        }
    }

    #[test]
    fn laplacian_quadratic_form_is_nonnegative() {
        let g = line_graph();
        let w = gaussian_adjacency(&g, SigmaRule::MedianScale(1.0));
        let l = laplacian(&w).to_dense();
        for y in [
            vec![1.0f32, -1.0, 0.5, 2.0],
            vec![0.0, 0.0, 0.0, 0.0],
            vec![1.0, 1.0, 1.0, 1.0],
        ] {
            let q = l.quadratic_form(&y);
            assert!(q >= -1e-5, "quadratic form {q} for {y:?}");
        }
        // Constant vectors are in the null space.
        let q_const = l.quadratic_form(&[3.0, 3.0, 3.0, 3.0]);
        assert!(q_const.abs() < 1e-4);
    }

    #[test]
    fn sigma_rules_resolve() {
        let g = line_graph();
        assert_eq!(SigmaRule::Fixed(0.05).resolve(&g), 0.05);
        let adaptive = SigmaRule::MedianScale(2.0).resolve(&g);
        assert!(adaptive > 0.0);
        let tuned = SigmaRule::SelfTuning(1.0).resolve(&g);
        assert!(tuned > 0.0);
    }

    #[test]
    fn self_tuning_downweights_bridge_edges() {
        // A dense pair (0, 1) and a far point 2 bridged from 1. Under
        // self-tuning, the bridge weight relative to the dense weight is
        // far smaller than under a single global σ.
        let data = [0.0f32, 0.05, 3.0, 3.05];
        let g = KnnGraph::brute_force(1, &data, 2);
        let tuned = gaussian_adjacency(&g, SigmaRule::SelfTuning(1.0));
        let global = gaussian_adjacency(&g, SigmaRule::MedianScale(1.0));
        let ratio = |w: &CsrMatrix| w.get(1, 2) / w.get(0, 1).max(1e-20);
        assert!(
            ratio(&tuned) <= ratio(&global) + 1e-6,
            "tuned {} vs global {}",
            ratio(&tuned),
            ratio(&global)
        );
        assert_eq!(tuned.max_asymmetry(), 0.0);
    }

    #[test]
    fn mutual_edges_are_not_double_counted() {
        // Nodes 1 and 2 are mutual nearest neighbours; the weight must
        // equal the Gaussian of their distance exactly once.
        let g = line_graph();
        let w = gaussian_adjacency(&g, SigmaRule::Fixed(1.0));
        let expect = (-(0.1f64 * 0.1) / 2.0).exp() as f32;
        assert!((w.get(1, 2) - expect).abs() < 1e-5);
    }
}
