//! Limited-memory BFGS (Liu & Nocedal 1989) with a strong-Wolfe line
//! search.
//!
//! SeeSaw's query aligner re-solves its loss after every feedback round;
//! the solve must be robust without learning-rate tuning (the paper calls
//! this out explicitly: L-BFGS "removes the need for learning rate tuning
//! (and also the possibility of divergence or no convergence)"). The
//! implementation uses the standard two-loop recursion with an
//! `H₀ = γI` scaling and a bracket/zoom strong-Wolfe line search
//! (Nocedal & Wright, Algorithms 3.5/3.6).

/// A differentiable objective: fills `grad` and returns the value at `x`.
pub trait Objective {
    /// Evaluate the function value and gradient at `x`.
    fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64;
}

impl<F> Objective for F
where
    F: Fn(&[f64], &mut [f64]) -> f64,
{
    fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64 {
        self(x, grad)
    }
}

/// Tuning knobs for [`Lbfgs`]. The defaults solve the aligner loss in a
/// few tens of iterations, matching the paper's description.
#[derive(Clone, Debug)]
pub struct LbfgsConfig {
    /// Number of curvature pairs retained (`m` in the literature).
    pub history: usize,
    /// Hard iteration cap.
    pub max_iters: usize,
    /// Stop when `‖∇f‖∞ ≤ grad_tol`.
    pub grad_tol: f64,
    /// Stop when the relative decrease of `f` falls below this.
    pub f_tol: f64,
    /// Armijo (sufficient-decrease) constant `c₁`.
    pub c1: f64,
    /// Curvature constant `c₂` (strong Wolfe).
    pub c2: f64,
    /// Line-search iteration cap.
    pub max_line_search: usize,
}

impl Default for LbfgsConfig {
    fn default() -> Self {
        Self {
            history: 10,
            max_iters: 100,
            grad_tol: 1e-6,
            f_tol: 1e-10,
            c1: 1e-4,
            c2: 0.9,
            max_line_search: 30,
        }
    }
}

/// Why the solver stopped, plus the solution statistics.
#[derive(Clone, Debug, PartialEq)]
pub struct LbfgsOutcome {
    /// Final objective value.
    pub value: f64,
    /// Infinity norm of the final gradient.
    pub grad_norm: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// True when stopping was due to a tolerance (not the iteration cap).
    pub converged: bool,
}

/// The L-BFGS minimizer. Construct once and reuse across solves; all
/// per-solve state is local.
#[derive(Clone, Debug, Default)]
pub struct Lbfgs {
    config: LbfgsConfig,
}

impl Lbfgs {
    /// Create a solver with the given configuration.
    pub fn new(config: LbfgsConfig) -> Self {
        Self { config }
    }

    /// Minimize `f` starting from `x0`; `x0` is updated in place to the
    /// minimizer found.
    pub fn minimize<O: Objective>(&self, f: &O, x: &mut [f64]) -> LbfgsOutcome {
        let n = x.len();
        let cfg = &self.config;
        let mut grad = vec![0.0f64; n];
        let mut value = f.value_grad(x, &mut grad);
        assert!(
            value.is_finite(),
            "objective must be finite at the starting point (got {value})"
        );

        // Curvature pair ring buffers.
        let mut s_hist: Vec<Vec<f64>> = Vec::with_capacity(cfg.history);
        let mut y_hist: Vec<Vec<f64>> = Vec::with_capacity(cfg.history);
        let mut rho_hist: Vec<f64> = Vec::with_capacity(cfg.history);

        let mut direction = vec![0.0f64; n];
        let mut alpha_buf = vec![0.0f64; cfg.history];

        for iter in 0..cfg.max_iters {
            let gnorm = inf_norm(&grad);
            if gnorm <= cfg.grad_tol {
                return LbfgsOutcome {
                    value,
                    grad_norm: gnorm,
                    iterations: iter,
                    converged: true,
                };
            }

            two_loop(
                &grad,
                &s_hist,
                &y_hist,
                &rho_hist,
                &mut alpha_buf,
                &mut direction,
            );

            // Ensure a descent direction; fall back to steepest descent if
            // the curvature history has gone bad numerically.
            let dg = dot(&direction, &grad);
            if !dg.is_finite() || dg >= 0.0 {
                for (d, g) in direction.iter_mut().zip(grad.iter()) {
                    *d = -g;
                }
                s_hist.clear();
                y_hist.clear();
                rho_hist.clear();
            }

            let step0 = if s_hist.is_empty() && iter == 0 {
                // First step: scale to unit-ish movement.
                (1.0 / inf_norm(&direction).max(1e-12)).min(1.0)
            } else {
                1.0
            };

            let ls = wolfe_line_search(f, x, value, &grad, &direction, step0, cfg);
            let Some(ls) = ls else {
                // Line search failed: gradient is as good as it gets.
                return LbfgsOutcome {
                    value,
                    grad_norm: gnorm,
                    iterations: iter,
                    converged: false,
                };
            };

            // s = x_new − x, y = g_new − g.
            let mut s = vec![0.0f64; n];
            let mut yv = vec![0.0f64; n];
            for i in 0..n {
                s[i] = ls.x[i] - x[i];
                yv[i] = ls.grad[i] - grad[i];
            }
            let sy = dot(&s, &yv);
            let prev_value = value;
            x.copy_from_slice(&ls.x);
            grad.copy_from_slice(&ls.grad);
            value = ls.value;

            if sy > 1e-12 {
                if s_hist.len() == cfg.history {
                    s_hist.remove(0);
                    y_hist.remove(0);
                    rho_hist.remove(0);
                }
                s_hist.push(s);
                y_hist.push(yv);
                rho_hist.push(1.0 / sy);
            }

            let rel_decrease =
                (prev_value - value).abs() / prev_value.abs().max(value.abs()).max(1.0);
            if rel_decrease <= cfg.f_tol {
                return LbfgsOutcome {
                    value,
                    grad_norm: inf_norm(&grad),
                    iterations: iter + 1,
                    converged: true,
                };
            }
        }

        LbfgsOutcome {
            value,
            grad_norm: inf_norm(&grad),
            iterations: cfg.max_iters,
            converged: false,
        }
    }
}

/// Two-loop recursion producing `direction = −H·grad`.
fn two_loop(
    grad: &[f64],
    s_hist: &[Vec<f64>],
    y_hist: &[Vec<f64>],
    rho_hist: &[f64],
    alpha_buf: &mut [f64],
    direction: &mut [f64],
) {
    direction.copy_from_slice(grad);
    let m = s_hist.len();
    for i in (0..m).rev() {
        let alpha = rho_hist[i] * dot(&s_hist[i], direction);
        alpha_buf[i] = alpha;
        axpy(direction, -alpha, &y_hist[i]);
    }
    // Initial Hessian scaling γ = (s·y)/(y·y) of the most recent pair.
    if m > 0 {
        let last = m - 1;
        let yy = dot(&y_hist[last], &y_hist[last]);
        if yy > 1e-12 {
            let gamma = 1.0 / (rho_hist[last] * yy);
            for d in direction.iter_mut() {
                *d *= gamma;
            }
        }
    }
    for i in 0..m {
        let beta = rho_hist[i] * dot(&y_hist[i], direction);
        axpy(direction, alpha_buf[i] - beta, &s_hist[i]);
    }
    for d in direction.iter_mut() {
        *d = -*d;
    }
}

struct LineSearchResult {
    x: Vec<f64>,
    grad: Vec<f64>,
    value: f64,
}

/// Strong-Wolfe bracket/zoom line search (Nocedal & Wright Alg. 3.5/3.6).
fn wolfe_line_search<O: Objective>(
    f: &O,
    x0: &[f64],
    f0: f64,
    g0: &[f64],
    direction: &[f64],
    step0: f64,
    cfg: &LbfgsConfig,
) -> Option<LineSearchResult> {
    let n = x0.len();
    let d_dot_g0 = dot(direction, g0);
    if d_dot_g0 >= 0.0 {
        return None; // not a descent direction
    }

    let eval = |alpha: f64, x: &mut Vec<f64>, g: &mut Vec<f64>| -> (f64, f64) {
        for i in 0..n {
            x[i] = x0[i] + alpha * direction[i];
        }
        let v = f.value_grad(x, g);
        (v, dot(direction, g))
    };

    let mut x = vec![0.0f64; n];
    let mut g = vec![0.0f64; n];

    let mut alpha_prev = 0.0f64;
    let mut f_prev = f0;
    let mut alpha = step0.max(1e-16);
    let alpha_max = 1e6;

    for i in 0..cfg.max_line_search {
        let (fi, di) = eval(alpha, &mut x, &mut g);
        if !fi.is_finite() {
            // Overshot into a bad region — shrink hard.
            alpha *= 0.25;
            continue;
        }
        if fi > f0 + cfg.c1 * alpha * d_dot_g0 || (i > 0 && fi >= f_prev) {
            return zoom(
                f, x0, f0, d_dot_g0, direction, alpha_prev, f_prev, alpha, cfg, &mut x, &mut g,
            );
        }
        if di.abs() <= -cfg.c2 * d_dot_g0 {
            return Some(LineSearchResult {
                x,
                grad: g,
                value: fi,
            });
        }
        if di >= 0.0 {
            return zoom(
                f, x0, f0, d_dot_g0, direction, alpha, fi, alpha_prev, cfg, &mut x, &mut g,
            );
        }
        alpha_prev = alpha;
        f_prev = fi;
        alpha = (2.0 * alpha).min(alpha_max);
    }
    None
}

#[allow(clippy::too_many_arguments)]
fn zoom<O: Objective>(
    f: &O,
    x0: &[f64],
    f0: f64,
    d_dot_g0: f64,
    direction: &[f64],
    mut lo: f64,
    mut f_lo: f64,
    mut hi: f64,
    cfg: &LbfgsConfig,
    x: &mut [f64],
    g: &mut [f64],
) -> Option<LineSearchResult> {
    let n = x0.len();
    for _ in 0..cfg.max_line_search {
        let alpha = 0.5 * (lo + hi);
        for i in 0..n {
            x[i] = x0[i] + alpha * direction[i];
        }
        let fi = f.value_grad(x, g);
        let di = dot(direction, g);
        if !fi.is_finite() || fi > f0 + cfg.c1 * alpha * d_dot_g0 || fi >= f_lo {
            hi = alpha;
        } else {
            if di.abs() <= -cfg.c2 * d_dot_g0 {
                return Some(LineSearchResult {
                    x: x.to_vec(),
                    grad: g.to_vec(),
                    value: fi,
                });
            }
            if di * (hi - lo) >= 0.0 {
                hi = lo;
            }
            lo = alpha;
            f_lo = fi;
        }
        if (hi - lo).abs() < 1e-14 {
            break;
        }
    }
    // Accept the best sufficient-decrease point even without curvature —
    // better than reporting total failure on hard losses.
    let alpha = lo;
    if alpha > 0.0 {
        for i in 0..n {
            x[i] = x0[i] + alpha * direction[i];
        }
        let fi = f.value_grad(x, g);
        if fi.is_finite() && fi < f0 {
            return Some(LineSearchResult {
                x: x.to_vec(),
                grad: g.to_vec(),
                value: fi,
            });
        }
    }
    None
}

#[inline]
fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

#[inline]
fn axpy(a: &mut [f64], s: f64, b: &[f64]) {
    for (x, y) in a.iter_mut().zip(b.iter()) {
        *x += s * y;
    }
}

#[inline]
fn inf_norm(a: &[f64]) -> f64 {
    a.iter().fold(0.0f64, |m, v| m.max(v.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// f(x) = Σ cᵢ(xᵢ − tᵢ)², a separable strictly convex quadratic.
    struct Quadratic {
        c: Vec<f64>,
        t: Vec<f64>,
    }

    impl Objective for Quadratic {
        fn value_grad(&self, x: &[f64], grad: &mut [f64]) -> f64 {
            let mut v = 0.0;
            for i in 0..x.len() {
                let d = x[i] - self.t[i];
                v += self.c[i] * d * d;
                grad[i] = 2.0 * self.c[i] * d;
            }
            v
        }
    }

    #[test]
    fn solves_quadratic_exactly() {
        let q = Quadratic {
            c: vec![1.0, 10.0, 0.5, 3.0],
            t: vec![1.0, -2.0, 3.0, 0.25],
        };
        let mut x = vec![0.0; 4];
        let out = Lbfgs::default().minimize(&q, &mut x);
        assert!(out.converged, "{out:?}");
        for (xi, ti) in x.iter().zip(q.t.iter()) {
            assert!((xi - ti).abs() < 1e-5, "{x:?}");
        }
    }

    #[test]
    fn solves_rosenbrock() {
        // Classic non-convex banana function; minimum at (1, 1).
        let rosen = |x: &[f64], g: &mut [f64]| -> f64 {
            let (a, b) = (x[0], x[1]);
            g[0] = -2.0 * (1.0 - a) - 400.0 * a * (b - a * a);
            g[1] = 200.0 * (b - a * a);
            (1.0 - a).powi(2) + 100.0 * (b - a * a).powi(2)
        };
        let mut x = vec![-1.2, 1.0];
        let cfg = LbfgsConfig {
            max_iters: 500,
            ..LbfgsConfig::default()
        };
        let out = Lbfgs::new(cfg).minimize(&rosen, &mut x);
        assert!(out.value < 1e-8, "{out:?} at {x:?}");
        assert!((x[0] - 1.0).abs() < 1e-3);
        assert!((x[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn monotone_nonincreasing_objective() {
        // The Wolfe conditions guarantee every accepted step decreases f;
        // check on a mildly ill-conditioned quadratic by instrumenting the
        // objective.
        use std::cell::RefCell;
        let seen = RefCell::new(Vec::<f64>::new());
        let f = |x: &[f64], g: &mut [f64]| -> f64 {
            let mut v = 0.0;
            for (i, xi) in x.iter().enumerate() {
                let c = 10f64.powi(i as i32 % 4);
                v += c * xi * xi;
                g[i] = 2.0 * c * xi;
            }
            seen.borrow_mut().push(v);
            v
        };
        let mut x = vec![1.0; 8];
        let out = Lbfgs::default().minimize(&f, &mut x);
        assert!(out.converged);
        assert!(out.value < 1e-8);
    }

    #[test]
    fn already_optimal_returns_immediately() {
        let q = Quadratic {
            c: vec![1.0],
            t: vec![5.0],
        };
        let mut x = vec![5.0];
        let out = Lbfgs::default().minimize(&q, &mut x);
        assert!(out.converged);
        assert_eq!(out.iterations, 0);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn panics_on_nan_start() {
        let f = |_: &[f64], g: &mut [f64]| -> f64 {
            g[0] = f64::NAN;
            f64::NAN
        };
        let mut x = vec![0.0];
        let _ = Lbfgs::default().minimize(&f, &mut x);
    }

    #[test]
    fn high_dimensional_logistic_style_loss() {
        // log(1+e^{-x·t}) + 0.01‖x‖² in 64-d has a unique minimizer;
        // convergence within the default iteration budget mirrors the
        // aligner's regime.
        let t: Vec<f64> = (0..64)
            .map(|i| ((i * 37 + 11) % 13) as f64 / 13.0 - 0.5)
            .collect();
        let tt = t.clone();
        let f = move |x: &[f64], g: &mut [f64]| -> f64 {
            let z: f64 = x.iter().zip(tt.iter()).map(|(a, b)| a * b).sum();
            let s = crate::sigmoid(z);
            let mut v = crate::log1p_exp(-z);
            for i in 0..x.len() {
                g[i] = (s - 1.0) * tt[i] + 0.02 * x[i];
                v += 0.01 * x[i] * x[i];
            }
            v
        };
        let mut x = vec![0.0; 64];
        let out = Lbfgs::default().minimize(&f, &mut x);
        assert!(out.converged, "{out:?}");
        assert!(out.iterations < 60, "took {} iterations", out.iterations);
    }
}
