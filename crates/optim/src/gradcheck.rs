//! Finite-difference gradient verification.
//!
//! Every hand-derived gradient in this workspace (logistic, Platt, and —
//! most importantly — the four-term aligner loss of §4.4) is validated
//! against central differences in its test suite using this helper.

use crate::lbfgs::Objective;

/// Maximum absolute difference between the analytic gradient of `f` at
/// `x` and a central finite-difference estimate with step `h`,
/// normalized by `max(1, |analytic|)` per coordinate.
pub fn max_gradient_error<O: Objective>(f: &O, x: &[f64], h: f64) -> f64 {
    let n = x.len();
    let mut analytic = vec![0.0f64; n];
    let _ = f.value_grad(x, &mut analytic);

    let mut xp = x.to_vec();
    let mut scratch = vec![0.0f64; n];
    let mut worst = 0.0f64;
    for i in 0..n {
        let orig = xp[i];
        xp[i] = orig + h;
        let fp = f.value_grad(&xp, &mut scratch);
        xp[i] = orig - h;
        let fm = f.value_grad(&xp, &mut scratch);
        xp[i] = orig;
        let numeric = (fp - fm) / (2.0 * h);
        let denom = analytic[i].abs().max(1.0);
        worst = worst.max((numeric - analytic[i]).abs() / denom);
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correct_gradient_passes() {
        let f = |x: &[f64], g: &mut [f64]| -> f64 {
            g[0] = 2.0 * x[0];
            g[1] = x[1].cos();
            x[0] * x[0] + x[1].sin()
        };
        let err = max_gradient_error(&f, &[0.7, -0.3], 1e-6);
        assert!(err < 1e-6, "{err}");
    }

    #[test]
    fn wrong_gradient_is_flagged() {
        let f = |x: &[f64], g: &mut [f64]| -> f64 {
            g[0] = 3.0 * x[0]; // should be 2·x
            x[0] * x[0]
        };
        let err = max_gradient_error(&f, &[1.0], 1e-6);
        assert!(err > 0.3, "{err}");
    }
}
