//! Property-based tests of the solvers.

#![cfg(test)]

use crate::lbfgs::{Lbfgs, LbfgsConfig};
use crate::logistic::{LogisticConfig, LogisticModel};
use crate::platt::PlattScaler;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn lbfgs_solves_random_convex_quadratics(
        curvatures in proptest::collection::vec(0.1f64..50.0, 1..8),
        targets in proptest::collection::vec(-5.0f64..5.0, 8),
        starts in proptest::collection::vec(-5.0f64..5.0, 8),
    ) {
        let n = curvatures.len();
        let t = &targets[..n];
        let c = &curvatures[..n];
        let f = |x: &[f64], g: &mut [f64]| -> f64 {
            let mut v = 0.0;
            for i in 0..x.len() {
                let d = x[i] - t[i];
                v += c[i] * d * d;
                g[i] = 2.0 * c[i] * d;
            }
            v
        };
        let mut x = starts[..n].to_vec();
        let out = Lbfgs::new(LbfgsConfig { max_iters: 300, ..Default::default() }).minimize(&f, &mut x);
        prop_assert!(out.converged, "{out:?}");
        for (xi, ti) in x.iter().zip(t.iter()) {
            prop_assert!((xi - ti).abs() < 1e-3, "{x:?} vs {t:?}");
        }
    }

    #[test]
    fn lbfgs_never_returns_worse_than_start(
        seed_coords in proptest::collection::vec(-3.0f64..3.0, 4),
        shift in -2.0f64..2.0,
    ) {
        // A non-convex but smooth function: sum of cos + quadratic bowl.
        let f = move |x: &[f64], g: &mut [f64]| -> f64 {
            let mut v = 0.0;
            for i in 0..x.len() {
                v += (x[i] - shift).powi(2) + 0.5 * x[i].cos();
                g[i] = 2.0 * (x[i] - shift) - 0.5 * x[i].sin();
            }
            v
        };
        let mut scratch = vec![0.0; seed_coords.len()];
        let start_val = f(&seed_coords, &mut scratch);
        let mut x = seed_coords.clone();
        let out = Lbfgs::default().minimize(&f, &mut x);
        prop_assert!(out.value <= start_val + 1e-9, "{} > {start_val}", out.value);
    }

    #[test]
    fn logistic_score_sign_matches_majority_on_pure_data(
        direction in proptest::collection::vec(-1.0f32..1.0, 3),
        n in 4usize..20,
    ) {
        // All positives at +d, all negatives at −d: the learned score of
        // +d must be positive.
        let norm: f32 = direction.iter().map(|v| v * v).sum::<f32>().sqrt();
        prop_assume!(norm > 0.1);
        let pos: Vec<f32> = direction.clone();
        let neg: Vec<f32> = direction.iter().map(|v| -v).collect();
        let mut xs: Vec<&[f32]> = Vec::new();
        let mut ys = Vec::new();
        for i in 0..n {
            if i % 2 == 0 {
                xs.push(&pos);
                ys.push(true);
            } else {
                xs.push(&neg);
                ys.push(false);
            }
        }
        let model = LogisticModel::fit(3, &xs, &ys, &LogisticConfig { l2: 0.1, ..Default::default() }).unwrap();
        prop_assert!(model.score(&pos) > 0.0);
        prop_assert!(model.score(&neg) < 0.0);
    }

    #[test]
    fn platt_outputs_are_probabilities_and_monotone_when_slope_positive(
        scores in proptest::collection::vec(-5.0f32..5.0, 8..40),
    ) {
        // Label = score > median: a monotone ground truth.
        let mut sorted = scores.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[sorted.len() / 2];
        let labels: Vec<bool> = scores.iter().map(|&s| s > median).collect();
        prop_assume!(labels.iter().any(|&l| l) && labels.iter().any(|&l| !l));
        if let Some(p) = PlattScaler::fit(&scores, &labels) {
            for &s in &scores {
                let v = p.calibrate(s);
                prop_assert!((0.0..=1.0).contains(&v));
            }
            prop_assert!(p.a > 0.0, "slope {}", p.a);
            prop_assert!(p.calibrate(5.0) >= p.calibrate(-5.0));
        }
    }
}
