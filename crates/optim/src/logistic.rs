//! L2-regularized logistic regression.
//!
//! This is the workhorse behind two parts of the paper:
//!
//! * the **few-shot CLIP** baseline (§3.2, Eq. 1): fit `w` on the handful
//!   of labeled examples from user feedback. Following the paper, the
//!   bias term defaults to *off* ("we find fitting both w and b …
//!   substantially reduces the accuracy of the learned w as a query, so
//!   we do not use the b parameter");
//! * the **ideal query vector** of Fig. 4: fit `w` on the *entire*
//!   labeled dataset to upper-bound what query alignment can achieve.

use crate::lbfgs::{Lbfgs, LbfgsConfig};
use crate::{log1p_exp, sigmoid};

/// Configuration for [`LogisticModel::fit`].
#[derive(Clone, Debug)]
pub struct LogisticConfig {
    /// L2 penalty `λ‖w‖²` (paper Eq. 1 uses λ = 100 in the benchmark).
    pub l2: f64,
    /// Fit an intercept. Default `false` per §3.2.
    pub fit_bias: bool,
    /// Optional per-class weights `(w_neg, w_pos)` to balance skewed
    /// feedback sets.
    pub class_weights: Option<(f64, f64)>,
    /// Solver settings.
    pub solver: LbfgsConfig,
}

impl Default for LogisticConfig {
    fn default() -> Self {
        Self {
            l2: 100.0,
            fit_bias: false,
            class_weights: None,
            solver: LbfgsConfig::default(),
        }
    }
}

/// A fitted linear classifier `P(y=1|x) = σ(w·x + b)`.
#[derive(Clone, Debug)]
pub struct LogisticModel {
    /// Learned weight vector (length = feature dimension).
    pub weights: Vec<f32>,
    /// Learned intercept (0 unless `fit_bias`).
    pub bias: f32,
    /// Final training loss.
    pub loss: f64,
    /// Whether the solver reported convergence.
    pub converged: bool,
}

impl LogisticModel {
    /// Fit on rows `x` (each of dimension `dim`) with ±labels `y`
    /// (`true` = positive). Returns `None` when `x` is empty.
    ///
    /// # Panics
    /// Panics if `x` and `y` lengths differ, or a row has the wrong
    /// dimension.
    pub fn fit(dim: usize, x: &[&[f32]], y: &[bool], config: &LogisticConfig) -> Option<Self> {
        assert_eq!(x.len(), y.len(), "feature/label count mismatch");
        if x.is_empty() {
            return None;
        }
        for (i, row) in x.iter().enumerate() {
            assert_eq!(row.len(), dim, "row {i} has wrong dimension");
        }
        let n_params = if config.fit_bias { dim + 1 } else { dim };
        let (w_neg, w_pos) = config.class_weights.unwrap_or((1.0, 1.0));

        let objective = |p: &[f64], grad: &mut [f64]| -> f64 {
            grad.iter_mut().for_each(|g| *g = 0.0);
            let bias = if config.fit_bias { p[dim] } else { 0.0 };
            let mut loss = 0.0f64;
            for (row, &label) in x.iter().zip(y.iter()) {
                let mut z = bias;
                for (pi, xi) in p[..dim].iter().zip(row.iter()) {
                    z += pi * (*xi as f64);
                }
                let weight = if label { w_pos } else { w_neg };
                // loss = −log σ(z) for y=1 ; −log(1−σ(z)) for y=0
                loss += weight * if label { log1p_exp(-z) } else { log1p_exp(z) };
                let residual = weight * (sigmoid(z) - if label { 1.0 } else { 0.0 });
                for (g, xi) in grad[..dim].iter_mut().zip(row.iter()) {
                    *g += residual * (*xi as f64);
                }
                if config.fit_bias {
                    grad[dim] += residual;
                }
            }
            // λ‖w‖² penalty on weights only, never the bias.
            for i in 0..dim {
                loss += config.l2 * p[i] * p[i];
                grad[i] += 2.0 * config.l2 * p[i];
            }
            loss
        };

        let mut params = vec![0.0f64; n_params];
        let outcome = Lbfgs::new(config.solver.clone()).minimize(&objective, &mut params);
        Some(Self {
            weights: params[..dim].iter().map(|&v| v as f32).collect(),
            bias: if config.fit_bias {
                params[dim] as f32
            } else {
                0.0
            },
            loss: outcome.value,
            converged: outcome.converged,
        })
    }

    /// Decision score `w·x + b`.
    pub fn score(&self, x: &[f32]) -> f32 {
        let mut z = self.bias;
        for (w, xi) in self.weights.iter().zip(x.iter()) {
            z += w * xi;
        }
        z
    }

    /// Probability `P(y=1|x)`.
    pub fn predict_proba(&self, x: &[f32]) -> f32 {
        sigmoid(self.score(x) as f64) as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn separable_data(n: usize, seed: u64) -> (Vec<Vec<f32>>, Vec<bool>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let label = rng.gen_bool(0.5);
            let center = if label { 1.0 } else { -1.0 };
            xs.push(vec![
                center + rng.gen_range(-0.3..0.3),
                rng.gen_range(-1.0..1.0),
            ]);
            ys.push(label);
        }
        (xs, ys)
    }

    #[test]
    fn learns_a_separating_direction() {
        let (xs, ys) = separable_data(200, 3);
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let cfg = LogisticConfig {
            l2: 0.01,
            ..Default::default()
        };
        let model = LogisticModel::fit(2, &refs, &ys, &cfg).unwrap();
        let correct = refs
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| (model.score(x) > 0.0) == y)
            .count();
        assert!(correct as f64 / ys.len() as f64 > 0.95, "{correct}/200");
        // The informative axis should dominate.
        assert!(model.weights[0].abs() > model.weights[1].abs() * 3.0);
    }

    #[test]
    fn empty_input_returns_none() {
        assert!(LogisticModel::fit(4, &[], &[], &LogisticConfig::default()).is_none());
    }

    #[test]
    fn strong_l2_shrinks_weights() {
        let (xs, ys) = separable_data(50, 5);
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let small = LogisticModel::fit(
            2,
            &refs,
            &ys,
            &LogisticConfig {
                l2: 0.01,
                ..Default::default()
            },
        )
        .unwrap();
        let big = LogisticModel::fit(
            2,
            &refs,
            &ys,
            &LogisticConfig {
                l2: 100.0,
                ..Default::default()
            },
        )
        .unwrap();
        let norm = |w: &[f32]| w.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm(&big.weights) < norm(&small.weights));
    }

    #[test]
    fn bias_disabled_by_default() {
        let (xs, ys) = separable_data(50, 7);
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let model = LogisticModel::fit(2, &refs, &ys, &LogisticConfig::default()).unwrap();
        assert_eq!(model.bias, 0.0);
    }

    #[test]
    fn bias_learned_when_enabled_on_shifted_data() {
        // All-positive region is shifted: x > 2 → needs a negative bias.
        let xs: Vec<Vec<f32>> = (0..100).map(|i| vec![i as f32 / 10.0]).collect();
        let ys: Vec<bool> = (0..100).map(|i| i as f32 / 10.0 > 5.0).collect();
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let cfg = LogisticConfig {
            l2: 0.001,
            fit_bias: true,
            ..Default::default()
        };
        let model = LogisticModel::fit(1, &refs, &ys, &cfg).unwrap();
        assert!(model.bias < 0.0, "bias {}", model.bias);
        let correct = refs
            .iter()
            .zip(ys.iter())
            .filter(|(x, &y)| (model.score(x) > 0.0) == y)
            .count();
        assert!(correct >= 95, "{correct}/100");
    }

    #[test]
    fn single_positive_example_points_toward_it() {
        // The few-shot regime: one labeled point. w must align with it.
        let x = vec![0.6f32, 0.8];
        let refs: [&[f32]; 1] = [x.as_slice()];
        let cfg = LogisticConfig {
            l2: 1.0,
            ..Default::default()
        };
        let model = LogisticModel::fit(2, &refs, &[true], &cfg).unwrap();
        let cos = (model.weights[0] * 0.6 + model.weights[1] * 0.8)
            / model.weights.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(cos > 0.99, "cosine {cos}");
    }

    #[test]
    fn class_weights_shift_the_boundary() {
        let xs = [vec![1.0f32], vec![-1.0f32]];
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let ys = vec![true, false];
        let balanced = LogisticModel::fit(
            1,
            &refs,
            &ys,
            &LogisticConfig {
                l2: 0.1,
                ..Default::default()
            },
        )
        .unwrap();
        let pos_heavy = LogisticModel::fit(
            1,
            &refs,
            &ys,
            &LogisticConfig {
                l2: 0.1,
                class_weights: Some((1.0, 10.0)),
                ..Default::default()
            },
        )
        .unwrap();
        assert!(pos_heavy.weights[0] > balanced.weights[0]);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let (xs, ys) = separable_data(20, 11);
        let refs: Vec<&[f32]> = xs.iter().map(|v| v.as_slice()).collect();
        let cfg = LogisticConfig {
            l2: 2.0,
            fit_bias: true,
            ..Default::default()
        };
        let dim = 2;
        let f = |p: &[f64], g: &mut [f64]| -> f64 {
            // Re-derive the closure used in fit (duplicated on purpose:
            // the production closure is private).
            g.iter_mut().for_each(|v| *v = 0.0);
            let mut loss = 0.0;
            for (row, &label) in refs.iter().zip(ys.iter()) {
                let mut z = p[dim];
                for (pi, xi) in p[..dim].iter().zip(row.iter()) {
                    z += pi * (*xi as f64);
                }
                loss += if label { log1p_exp(-z) } else { log1p_exp(z) };
                let r = sigmoid(z) - if label { 1.0 } else { 0.0 };
                for (gi, xi) in g[..dim].iter_mut().zip(row.iter()) {
                    *gi += r * (*xi as f64);
                }
                g[dim] += r;
            }
            for i in 0..dim {
                loss += cfg.l2 * p[i] * p[i];
                g[i] += 2.0 * cfg.l2 * p[i];
            }
            loss
        };
        let p = vec![0.3, -0.2, 0.1];
        let err = crate::gradcheck::max_gradient_error(&f, &p, 1e-5);
        assert!(err < 1e-4, "gradient error {err}");
    }
}
