//! Platt scaling (Platt 2000; Niculescu-Mizil & Caruana 2005).
//!
//! Table 4 of the paper shows ENS is highly sensitive to whether its
//! per-vertex prior scores are *calibrated* probabilities. The authors
//! calibrate CLIP scores with Platt scaling using ground-truth labels
//! ("not possible in a real deployment") to demonstrate the sensitivity;
//! we reproduce exactly that experiment.
//!
//! Platt scaling fits `P(y=1|s) = σ(a·s + b)` by maximizing the Bernoulli
//! likelihood with Platt's smoothed targets
//! `t⁺ = (N⁺+1)/(N⁺+2)`, `t⁻ = 1/(N⁻+2)`.

use crate::lbfgs::{Lbfgs, LbfgsConfig};
use crate::{log1p_exp, sigmoid};

/// A fitted score→probability map.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PlattScaler {
    /// Slope `a` (negative scores ranked lower ⇒ `a > 0` normally).
    pub a: f64,
    /// Intercept `b`.
    pub b: f64,
}

impl PlattScaler {
    /// Fit on raw scores and binary labels. Returns `None` when `scores`
    /// is empty or labels are single-class (slope would be unidentified;
    /// callers should fall back to the raw scores).
    pub fn fit(scores: &[f32], labels: &[bool]) -> Option<Self> {
        assert_eq!(scores.len(), labels.len(), "score/label count mismatch");
        let n_pos = labels.iter().filter(|&&l| l).count();
        let n_neg = labels.len() - n_pos;
        if n_pos == 0 || n_neg == 0 {
            return None;
        }
        let t_pos = (n_pos as f64 + 1.0) / (n_pos as f64 + 2.0);
        let t_neg = 1.0 / (n_neg as f64 + 2.0);

        let objective = |p: &[f64], grad: &mut [f64]| -> f64 {
            let (a, b) = (p[0], p[1]);
            let mut loss = 0.0;
            grad[0] = 0.0;
            grad[1] = 0.0;
            for (&s, &y) in scores.iter().zip(labels.iter()) {
                let z = a * s as f64 + b;
                let t = if y { t_pos } else { t_neg };
                // Cross-entropy against the smoothed target t:
                // −t·log σ(z) − (1−t)·log(1−σ(z)).
                loss += t * log1p_exp(-z) + (1.0 - t) * log1p_exp(z);
                let r = sigmoid(z) - t;
                grad[0] += r * s as f64;
                grad[1] += r;
            }
            loss
        };

        let mut params = vec![0.0f64, 0.0];
        let cfg = LbfgsConfig {
            max_iters: 200,
            ..LbfgsConfig::default()
        };
        let out = Lbfgs::new(cfg).minimize(&objective, &mut params);
        if !params[0].is_finite() || !params[1].is_finite() || !out.value.is_finite() {
            return None;
        }
        Some(Self {
            a: params[0],
            b: params[1],
        })
    }

    /// Map a raw score to a calibrated probability in `(0, 1)`.
    #[inline]
    pub fn calibrate(&self, score: f32) -> f32 {
        sigmoid(self.a * score as f64 + self.b) as f32
    }

    /// Calibrate a whole slice.
    pub fn calibrate_all(&self, scores: &[f32]) -> Vec<f32> {
        scores.iter().map(|&s| self.calibrate(s)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_monotone_mapping() {
        // Scores already ordered: positives have higher scores.
        let scores: Vec<f32> = (0..100).map(|i| i as f32 / 100.0).collect();
        let labels: Vec<bool> = (0..100).map(|i| i >= 50).collect();
        let platt = PlattScaler::fit(&scores, &labels).unwrap();
        assert!(platt.a > 0.0, "slope {}", platt.a);
        assert!(platt.calibrate(0.9) > 0.8);
        assert!(platt.calibrate(0.1) < 0.2);
    }

    #[test]
    fn calibrated_probabilities_match_base_rate() {
        // 20% positive at every score (label depends on the block index,
        // score on the position within the block, so they are
        // independent): calibrated output should hover near .2
        // regardless of score.
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            scores.push((i % 10) as f32 / 10.0);
            labels.push((i / 10) % 5 == 0);
        }
        let platt = PlattScaler::fit(&scores, &labels).unwrap();
        for s in [0.0f32, 0.5, 0.9] {
            let p = platt.calibrate(s);
            assert!((p - 0.2).abs() < 0.1, "score {s} gave {p}");
        }
    }

    #[test]
    fn single_class_returns_none() {
        assert!(PlattScaler::fit(&[0.1, 0.2], &[true, true]).is_none());
        assert!(PlattScaler::fit(&[0.1, 0.2], &[false, false]).is_none());
        assert!(PlattScaler::fit(&[], &[]).is_none());
    }

    #[test]
    fn probabilities_are_in_unit_interval() {
        let scores = vec![-100.0f32, -1.0, 0.0, 1.0, 100.0];
        let labels = vec![false, false, true, true, true];
        let platt = PlattScaler::fit(&scores, &labels).unwrap();
        for &s in &scores {
            let p = platt.calibrate(s);
            assert!((0.0..=1.0).contains(&p), "{p}");
        }
    }

    #[test]
    fn inverted_scores_get_negative_slope() {
        // If high score means *negative*, Platt learns a < 0 and fixes
        // the ordering.
        let scores: Vec<f32> = (0..60).map(|i| i as f32).collect();
        let labels: Vec<bool> = (0..60).map(|i| i < 30).collect();
        let platt = PlattScaler::fit(&scores, &labels).unwrap();
        assert!(platt.a < 0.0);
        assert!(platt.calibrate(0.0) > platt.calibrate(59.0));
    }
}
