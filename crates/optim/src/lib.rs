//! Numerical optimization substrates for SeeSaw.
//!
//! The paper minimizes its query-alignment loss with "the PyTorch
//! implementation of the L-BFGS optimization algorithm … L-BFGS finds the
//! optimal solution in a few tens of steps (taking a few milliseconds)"
//! (§4.4). This crate provides that black box from scratch:
//!
//! * [`lbfgs`] — limited-memory BFGS with a strong-Wolfe line search,
//! * [`logistic`] — L2-regularized logistic regression (the *few-shot
//!   CLIP* baseline of §3.2 and the *ideal query vector* of Fig. 4),
//! * [`platt`] — Platt scaling, used to calibrate ENS priors in Table 4,
//! * [`gradcheck`] — finite-difference gradient verification used by the
//!   test suites of every loss in the workspace.
//!
//! Solvers run in `f64` for numerical robustness; the embedding data they
//! consume stays `f32`.

pub mod gradcheck;
pub mod lbfgs;
pub mod logistic;
pub mod platt;
#[cfg(test)]
mod proptests;

pub use gradcheck::max_gradient_error;
pub use lbfgs::{Lbfgs, LbfgsConfig, LbfgsOutcome, Objective};
pub use logistic::{LogisticConfig, LogisticModel};
pub use platt::PlattScaler;

/// Numerically stable sigmoid.
#[inline]
pub fn sigmoid(z: f64) -> f64 {
    if z >= 0.0 {
        1.0 / (1.0 + (-z).exp())
    } else {
        let e = z.exp();
        e / (1.0 + e)
    }
}

/// Numerically stable `log(1 + e^z)` (softplus); the logistic loss for a
/// positive example with margin `−z`.
#[inline]
pub fn log1p_exp(z: f64) -> f64 {
    if z > 30.0 {
        z
    } else {
        z.exp().ln_1p()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_is_stable_at_extremes() {
        assert!(sigmoid(1000.0) <= 1.0);
        assert!(sigmoid(-1000.0) >= 0.0);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(-1000.0) < 1e-12);
    }

    #[test]
    fn log1p_exp_is_stable_and_correct() {
        assert!((log1p_exp(0.0) - (2.0f64).ln()).abs() < 1e-12);
        assert!((log1p_exp(100.0) - 100.0).abs() < 1e-9);
        assert!(log1p_exp(-100.0) < 1e-12);
    }
}
