//! Quickstart: generate a small dataset, preprocess it, and run one
//! interactive SeeSaw search with simulated box feedback.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use seesaw::prelude::*;

fn main() {
    // 1. A small COCO-like dataset: 80 categories, web-style images.
    //    (`0.002` scales the paper's 120 000 images down to 240.)
    let dataset = DatasetSpec::coco_like(0.002).generate(42);
    println!(
        "dataset: {} — {} images, {} benchmark queries",
        dataset.name,
        dataset.n_images(),
        dataset.queries().len()
    );

    // 2. One-time preprocessing (paper §2.4): multiscale tiling, patch
    //    embeddings, the Annoy-style vector store, the kNN graph, and
    //    the database-alignment matrix M_D.
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    println!(
        "index: {} patch vectors over {} images (multiscale = {})",
        index.n_patches(),
        index.n_images(),
        index.multiscale
    );

    // 3. Pick a query and run the interactive loop of Listing 1: text
    //    query → lookup → show → box feedback → align → repeat.
    let query = dataset.queries()[0];
    let concept = query.concept;
    println!(
        "\nsearching for concept {concept} ({} relevant images)",
        query.n_relevant
    );

    let mut session = Session::start(&index, &dataset, concept, MethodConfig::seesaw());
    let user = SimulatedUser::new(&dataset);

    let mut found = 0usize;
    let mut shown = 0usize;
    while found < 10 && shown < 60 {
        let batch = session.next_batch(1);
        let Some(&image) = batch.first() else { break };
        shown += 1;
        let feedback = user.annotate(image, concept);
        if feedback.relevant {
            found += 1;
            println!(
                "  #{shown:>2}: image {image} — RELEVANT ({} boxes) → query realigned",
                feedback.boxes.len()
            );
        } else {
            println!("  #{shown:>2}: image {image} — not relevant");
        }
        session.feedback(feedback);
    }
    println!("\nfound {found} relevant images in {shown} shown");

    // 4. How much did feedback move the query off the CLIP text vector?
    let drift = seesaw::linalg::cosine(session.q0(), session.current_query());
    println!("cosine(q0, aligned query) = {drift:.3}");
}
