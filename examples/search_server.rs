//! The "server layer" of Fig. 3 in action: one [`Engine`] serving many
//! concurrent user sessions over a shared preprocessed index — each
//! user searching a different concept with a different method, from its
//! own thread.
//!
//! ```sh
//! cargo run --release --example search_server
//! ```

use seesaw::core::{Engine, SessionId};
use seesaw::prelude::*;

fn main() {
    let dataset = DatasetSpec::lvis_like(0.003)
        .with_max_queries(12)
        .generate(11);
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    let engine = Engine::new(&index, &dataset);
    let user = SimulatedUser::new(&dataset);
    println!(
        "engine over {} images ({} patch vectors); {} available queries\n",
        index.n_images(),
        index.n_patches(),
        dataset.queries().len()
    );

    // Six concurrent "users", alternating methods.
    let assignments: Vec<(u32, &str, MethodConfig)> = dataset
        .queries()
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                (q.concept, "seesaw", MethodConfig::seesaw())
            } else {
                (q.concept, "zero-shot", MethodConfig::zero_shot())
            }
        })
        .collect();

    let results: Vec<(u32, &str, SessionId, usize, usize)> = std::thread::scope(|scope| {
        let handles: Vec<_> = assignments
            .iter()
            .map(|(concept, method_name, cfg)| {
                let engine = &engine;
                let user = &user;
                let cfg = cfg.clone();
                let concept = *concept;
                let method_name = *method_name;
                scope.spawn(move || {
                    let id = engine.create_session(concept, cfg);
                    let mut found = 0usize;
                    let mut shown = 0usize;
                    while found < 5 && shown < 40 {
                        let Some(batch) = engine.next_batch(id, 2) else {
                            break;
                        };
                        if batch.is_empty() {
                            break;
                        }
                        for img in batch {
                            shown += 1;
                            let fb = user.annotate(img, concept);
                            if fb.relevant {
                                found += 1;
                            }
                            engine.feedback(id, fb);
                        }
                    }
                    (concept, method_name, id, found, shown)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    println!(
        "{:<10} {:<10} {:>6} {:>6} {:>10}",
        "concept", "method", "found", "shown", "drift"
    );
    println!("{}", "-".repeat(46));
    for (concept, method, id, found, shown) in results {
        let drift = engine.stats(id).map(|s| s.query_drift).unwrap_or(f32::NAN);
        println!("{concept:<10} {method:<10} {found:>6} {shown:>6} {drift:>10.3}");
        engine.close(id);
    }
    println!("\nlive sessions after cleanup: {}", engine.live_sessions());
}
