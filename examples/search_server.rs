//! The "server layer" of Fig. 3 in action: one owned
//! [`SearchService`] serving many concurrent user sessions over a
//! shared preprocessed index — each user searching a different concept
//! with a different method, from its own *spawned* (non-scoped) thread,
//! which only works because the service is `Arc`-shareable and
//! `'static`. The last user speaks the wire protocol instead of the
//! typed API, showing the transport-ready path.
//!
//! ```sh
//! cargo run --release --example search_server
//! ```

use seesaw::core::protocol::{MethodSpec, Request, Response};
use seesaw::prelude::*;
use std::sync::Arc;

fn main() {
    let dataset = Arc::new(
        DatasetSpec::lvis_like(0.003)
            .with_max_queries(12)
            .generate(11),
    );
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
    println!(
        "service over {} images ({} patch vectors); {} available queries\n",
        service.index().n_images(),
        service.index().n_patches(),
        dataset.queries().len()
    );

    // Six concurrent "users", alternating methods.
    let assignments: Vec<(u32, &str, MethodConfig)> = dataset
        .queries()
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                (q.concept, "seesaw", MethodConfig::seesaw())
            } else {
                (q.concept, "zero-shot", MethodConfig::zero_shot())
            }
        })
        .collect();

    let handles: Vec<_> = assignments
        .into_iter()
        .map(|(concept, method_name, cfg)| {
            let service = Arc::clone(&service);
            let dataset = Arc::clone(&dataset);
            // Plain `std::thread::spawn`: the service is owned, so no
            // scope (and no lifetime) is needed to share it.
            std::thread::spawn(move || {
                let user = SimulatedUser::new(&dataset);
                let id = service.create_session(concept, cfg).expect("valid concept");
                let mut found = 0usize;
                let mut shown = 0usize;
                'search: while found < 5 && shown < 40 {
                    let batch = match service.next_batch(id, 2).expect("session is live") {
                        Batch::Images(images) => images,
                        Batch::Exhausted => break 'search,
                    };
                    for img in batch {
                        shown += 1;
                        let fb = user.annotate(img, concept);
                        if fb.relevant {
                            found += 1;
                        }
                        service.feedback(id, fb).expect("image was just shown");
                    }
                }
                (concept, method_name, id, found, shown)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    println!(
        "{:<10} {:<10} {:>6} {:>6} {:>10}",
        "concept", "method", "found", "shown", "drift"
    );
    println!("{}", "-".repeat(46));
    for (concept, method, id, found, shown) in results {
        let drift = service.stats(id).map(|s| s.query_drift).unwrap_or(f32::NAN);
        println!("{concept:<10} {method:<10} {found:>6} {shown:>6} {drift:>10.3}");
        service.close(id).expect("session still live");
    }

    // One more user, this time over the wire protocol: every message is
    // a single JSON line, so this loop could run across any transport.
    let concept = dataset.queries()[6 % dataset.queries().len()].concept;
    println!("\nwire-protocol user (concept {concept}):");
    let request = Request::Create {
        concept,
        method: MethodSpec::SeeSaw,
        search_k: None,
    }
    .encode();
    println!("  -> {request}");
    let reply = service.handle_line(&request);
    println!("  <- {reply}");
    let Response::Created { session } = Response::decode(&reply).expect("valid reply") else {
        panic!("create failed: {reply}");
    };
    let user = SimulatedUser::new(&dataset);
    for _ in 0..3 {
        let request = Request::NextBatch { session, n: 1 }.encode();
        let reply = service.handle_line(&request);
        println!("  -> {request}\n  <- {reply}");
        let Response::Batch { images } = Response::decode(&reply).expect("valid reply") else {
            break;
        };
        for image in images {
            let fb = user.annotate(image, concept);
            let request = Request::Feedback {
                session,
                image,
                relevant: fb.relevant,
                boxes: fb.boxes,
            }
            .encode();
            let reply = service.handle_line(&request);
            println!("  -> {request}\n  <- {reply}");
        }
    }
    let reply = service.handle_line(&Request::Close { session }.encode());
    println!("  -> close\n  <- {reply}");
    println!("\nlive sessions after cleanup: {}", service.live_sessions());
}
