//! The "server layer" of Fig. 3 — now over real sockets. A
//! [`Server`] binds an ephemeral loopback port and serves the
//! newline-delimited wire protocol with its event-loop core: a few
//! readiness-polled threads multiplex every connection, and a bounded
//! worker pool runs the CPU-bound dispatch. Six concurrent users
//! connect over TCP with the typed [`Client`], one more speaks raw
//! protocol lines on a plain `TcpStream` (exactly what `nc` would
//! send), and a final one pipelines a whole burst of requests down one
//! socket — in-order responses for one round trip. The server is shut
//! down gracefully at the end — in-flight requests drain, every thread
//! is joined — and the process exits 0, which is what CI's
//! server-smoke job asserts.
//!
//! ```sh
//! cargo run --release --example search_server
//! ```

use seesaw::core::protocol::{MethodSpec, Request, Response};
use seesaw::prelude::*;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn main() {
    let dataset = Arc::new(
        DatasetSpec::lvis_like(0.003)
            .with_max_queries(12)
            .generate(11),
    );
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
    println!(
        "service over {} images ({} patch vectors); {} available queries",
        service.index().n_images(),
        service.index().n_patches(),
        dataset.queries().len()
    );

    // A real TCP server on an ephemeral port: 4 workers, bounded
    // queue, connection cap — the knobs that make load shed instead of
    // queue (see the seesaw-server crate docs).
    let server = Server::bind(service, "127.0.0.1:0", ServerConfig::default())
        .expect("binding a loopback port");
    let addr = server.local_addr();
    println!("listening on {addr}\n");

    // Six concurrent "users", alternating methods, each a separate TCP
    // connection from its own thread.
    let assignments: Vec<(u32, &str, MethodSpec)> = dataset
        .queries()
        .iter()
        .take(6)
        .enumerate()
        .map(|(i, q)| {
            if i % 2 == 0 {
                (q.concept, "seesaw", MethodSpec::SeeSaw)
            } else {
                (q.concept, "zero-shot", MethodSpec::ZeroShot)
            }
        })
        .collect();

    let handles: Vec<_> = assignments
        .into_iter()
        .map(|(concept, method_name, method)| {
            let dataset = Arc::clone(&dataset);
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).expect("connect");
                let user = SimulatedUser::new(&dataset);
                let session = client.create(concept, method, None).expect("valid concept");
                let mut found = 0usize;
                let mut shown = 0usize;
                'search: while found < 5 && shown < 40 {
                    let images = match client.next_batch(session, 2).expect("live session") {
                        Batch::Images(images) => images,
                        Batch::Exhausted => break 'search,
                    };
                    for img in images {
                        shown += 1;
                        let fb = user.annotate(img, concept);
                        if fb.relevant {
                            found += 1;
                        }
                        client
                            .feedback(session, img, fb.relevant, fb.boxes)
                            .expect("image was just shown");
                    }
                }
                let (_, _, drift) = client.stats(session).expect("live session");
                client.close(session).expect("close");
                (concept, method_name, found, shown, drift)
            })
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    println!(
        "{:<10} {:<10} {:>6} {:>6} {:>10}",
        "concept", "method", "found", "shown", "drift"
    );
    println!("{}", "-".repeat(46));
    for (concept, method, found, shown, drift) in results {
        println!("{concept:<10} {method:<10} {found:>6} {shown:>6} {drift:>10.3}");
    }

    // One more user over raw protocol lines on a bare TcpStream — the
    // bytes below are exactly what `nc 127.0.0.1 <port>` would carry.
    let concept = dataset.queries()[6 % dataset.queries().len()].concept;
    println!("\nraw-socket wire-protocol user (concept {concept}):");
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    let mut round_trip = |request: String| -> Response {
        writer.write_all(request.as_bytes()).expect("write");
        writer.write_all(b"\n").expect("write");
        let mut reply = String::new();
        reader.read_line(&mut reply).expect("read");
        println!("  -> {request}\n  <- {}", reply.trim_end());
        Response::decode(reply.trim_end()).expect("valid reply")
    };

    let Response::Created { session } = round_trip(
        Request::Create {
            concept,
            method: MethodSpec::SeeSaw,
            search_k: None,
        }
        .encode(),
    ) else {
        panic!("create failed");
    };
    let user = SimulatedUser::new(&dataset);
    for _ in 0..3 {
        let Response::Batch { images } = round_trip(Request::NextBatch { session, n: 1 }.encode())
        else {
            break;
        };
        for image in images {
            let fb = user.annotate(image, concept);
            round_trip(
                Request::Feedback {
                    session,
                    image,
                    relevant: fb.relevant,
                    boxes: fb.boxes,
                }
                .encode(),
            );
        }
    }
    round_trip(Request::Close { session }.encode());

    // A pipelined user: one connection, a whole burst of requests
    // written back-to-back, responses collected in request order — the
    // event loop buffers the burst and executes it in arrival order,
    // so it costs one network round trip instead of one per request.
    let concept = dataset.queries()[7 % dataset.queries().len()].concept;
    let mut pipelined = Client::connect(addr).expect("connect");
    let session = pipelined
        .create(concept, MethodSpec::SeeSaw, None)
        .expect("create");
    let burst: Vec<Request> = (0..8)
        .flat_map(|_| {
            [
                Request::NextBatch { session, n: 1 },
                Request::Stats { session },
            ]
        })
        .chain(std::iter::once(Request::Close { session }))
        .collect();
    let responses = pipelined.pipeline(&burst).expect("pipelined burst");
    assert_eq!(responses.len(), burst.len());
    // In-order proof: each stats reply reflects exactly the batches
    // that preceded it in the burst.
    let shown_counts: Vec<u64> = responses
        .iter()
        .filter_map(|r| match r {
            Response::Stats { images_shown, .. } => Some(*images_shown),
            _ => None,
        })
        .collect();
    assert_eq!(shown_counts, (1..=8).collect::<Vec<u64>>());
    println!(
        "\npipelined user: {} requests down one socket in one burst, \
         responses in order (shown counts {shown_counts:?})",
        burst.len()
    );

    // Graceful shutdown: drain in-flight requests, join every thread.
    let stats = server.shutdown();
    println!(
        "\nshutdown clean: {} requests served over {} connections ({} shed at saturation, {} connections rejected)",
        stats.requests_served,
        stats.connections_accepted,
        stats.requests_rejected_saturated,
        stats.connections_rejected
    );
}
