//! Compare every search method on the same dataset: zero-shot CLIP,
//! few-shot CLIP, Rocchio, ENS, and SeeSaw (CLIP-align only and full),
//! reporting mean AP over all queries and over the hard subset — a
//! miniature of the paper's Tables 2 and 3.
//!
//! ```sh
//! cargo run --release --example method_faceoff
//! ```

use seesaw::core::run_benchmark_query;
use seesaw::prelude::*;

fn main() {
    let dataset = DatasetSpec::lvis_like(0.005)
        .with_max_queries(30)
        .generate(3);
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    let protocol = BenchmarkProtocol::default();
    println!(
        "lvis-like: {} images, {} patch vectors, {} queries\n",
        dataset.n_images(),
        index.n_patches(),
        dataset.queries().len()
    );

    let run_all = |make: &dyn Fn() -> MethodConfig| -> Vec<f64> {
        dataset
            .queries()
            .iter()
            .map(|q| run_benchmark_query(&index, &dataset, q.concept, make(), &protocol).ap)
            .collect()
    };

    let zero_shot = run_all(&MethodConfig::zero_shot);
    let hard: Vec<usize> = zero_shot
        .iter()
        .enumerate()
        .filter(|(_, &ap)| ap < 0.5)
        .map(|(i, _)| i)
        .collect();
    let mean = |aps: &[f64]| aps.iter().sum::<f64>() / aps.len().max(1) as f64;
    let hard_mean =
        |aps: &[f64]| hard.iter().map(|&i| aps[i]).sum::<f64>() / hard.len().max(1) as f64;

    println!("{:<22} {:>8} {:>12}", "method", "mean AP", "hard subset");
    println!("{}", "-".repeat(44));
    println!(
        "{:<22} {:>8.3} {:>12.3}",
        "zero-shot CLIP",
        mean(&zero_shot),
        hard_mean(&zero_shot)
    );
    type MethodRow<'a> = (&'a str, Box<dyn Fn() -> MethodConfig>);
    let methods: Vec<MethodRow> = vec![
        ("few-shot CLIP", Box::new(MethodConfig::seesaw_few_shot)),
        ("Rocchio", Box::new(MethodConfig::rocchio)),
        ("ENS (horizon 60)", Box::new(|| MethodConfig::ens(60))),
        (
            "SeeSaw (CLIP align)",
            Box::new(MethodConfig::seesaw_clip_only),
        ),
        ("SeeSaw (full)", Box::new(MethodConfig::seesaw)),
        ("SeeSaw (blind boot)", Box::new(MethodConfig::seesaw_blind)),
    ];
    for (name, make) in &methods {
        let aps = run_all(make.as_ref());
        println!("{:<22} {:>8.3} {:>12.3}", name, mean(&aps), hard_mean(&aps));
    }
    println!(
        "\nhard subset = {} queries with zero-shot AP < 0.5 (paper Fig. 1 definition)",
        hard.len()
    );
}
