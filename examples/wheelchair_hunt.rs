//! The paper's motivating scenario (§1): an autonomous-vehicle engineer
//! hunts for a *rare, small* object — "people in wheelchairs" — in a
//! BDD-style dash-cam corpus, where "using CLIP alone requires looking
//! through more than 100 images before the first wheelchair is found".
//!
//! This example finds the rarest hard category in a BDD-like dataset
//! and compares how quickly zero-shot CLIP vs full SeeSaw surface 10
//! examples, printing the running tally side by side.
//!
//! ```sh
//! cargo run --release --example wheelchair_hunt
//! ```

use seesaw::prelude::*;

fn main() {
    // A BDD-like dataset: 1280×720 frames, small objects, rare classes.
    let dataset = DatasetSpec::bdd_like(0.01).generate(7);
    let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
    println!(
        "bdd-like: {} images → {} multiscale patch vectors",
        dataset.n_images(),
        index.n_patches()
    );

    // "Wheelchair": the rarest benchmark query with a hard alignment
    // deficit — worst case for zero-shot CLIP.
    let wheelchair = dataset
        .queries()
        .iter()
        .filter(|q| dataset.model.spec(q.concept).deficit_angle > 0.8)
        .min_by_key(|q| q.n_relevant)
        .or_else(|| dataset.queries().iter().min_by_key(|q| q.n_relevant))
        .copied()
        .expect("dataset has queries");
    println!(
        "'wheelchair' stand-in: concept {} — {} relevant images of {} ({:.2}%), \
         text-alignment deficit {:.2} rad\n",
        wheelchair.concept,
        wheelchair.n_relevant,
        dataset.n_images(),
        100.0 * wheelchair.n_relevant as f64 / dataset.n_images() as f64,
        dataset.model.spec(wheelchair.concept).deficit_angle
    );

    let budget = 120;
    let user = SimulatedUser::new(&dataset);
    let mut tallies: Vec<(&str, Vec<usize>)> = Vec::new();
    for (name, cfg) in [
        ("zero-shot CLIP", MethodConfig::zero_shot()),
        ("SeeSaw", MethodConfig::seesaw()),
    ] {
        let mut session = Session::start(&index, &dataset, wheelchair.concept, cfg);
        let mut found = 0usize;
        let mut tally = Vec::with_capacity(budget);
        for _ in 0..budget {
            let Some(&img) = session.next_batch(1).first() else {
                break;
            };
            let fb = user.annotate(img, wheelchair.concept);
            if fb.relevant {
                found += 1;
            }
            session.feedback(fb);
            tally.push(found);
            if found >= 10 {
                break;
            }
        }
        tallies.push((name, tally));
    }

    println!("images inspected → wheelchairs found");
    println!("{:>8} {:>16} {:>10}", "shown", "zero-shot CLIP", "SeeSaw");
    let longest = tallies.iter().map(|(_, t)| t.len()).max().unwrap_or(0);
    for i in (0..longest).step_by(5).chain([longest.saturating_sub(1)]) {
        let cell = |t: &Vec<usize>| -> String {
            t.get(i)
                .map(|v| v.to_string())
                .unwrap_or_else(|| format!("done@{}", t.len()))
        };
        println!(
            "{:>8} {:>16} {:>10}",
            i + 1,
            cell(&tallies[0].1),
            cell(&tallies[1].1)
        );
    }
    for (name, tally) in &tallies {
        let found = tally.last().copied().unwrap_or(0);
        println!(
            "{name}: {} relevant in {} images{}",
            found,
            tally.len(),
            if found >= 10 {
                " — task complete"
            } else {
                ""
            }
        );
    }
}
