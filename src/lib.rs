//! # SeeSaw — interactive ad-hoc search over image databases
//!
//! A from-scratch Rust reproduction of *SeeSaw: Interactive Ad-hoc Search
//! Over Image Databases* (Moll, Favela, Madden, Gadepally, Cafarella —
//! SIGMOD 2023, arXiv:2208.06497).
//!
//! This facade crate re-exports the public API of every subsystem:
//!
//! * [`linalg`] — dense/sparse kernels shared by everything below.
//! * [`optim`] — L-BFGS, logistic regression, Platt scaling.
//! * [`embed`] — the synthetic visual-semantic embedding model that
//!   substitutes for CLIP (see `DESIGN.md` §1 for the substitution
//!   argument).
//! * [`dataset`] — synthetic labeled datasets mirroring COCO / LVIS /
//!   ObjectNet / BDD.
//! * [`vecstore`] — vector-store backends (exact scan, Annoy-style
//!   random-projection forest, IVF) behind one `VectorStore` trait,
//!   plus a sharding layer that parallelizes any of them; selected via
//!   `StoreConfig`.
//! * [`knn`] — NN-descent kNN graphs and label propagation.
//! * [`aligner`] — the paper's contribution: the query-alignment loss
//!   (CLIP alignment + database alignment) and its L-BFGS solve.
//! * [`baselines`] — Rocchio, few-shot CLIP, and Efficient Nonmyopic
//!   Search.
//! * [`core`] — multiscale tiling, the preprocessing pipeline, the
//!   interactive [`core::Session`] implementing Listing 1 of the paper,
//!   and the serving layer: [`core::SearchService`] (owned,
//!   per-session-locked, typed errors) plus the [`core::protocol`]
//!   request/response line codec.
//! * [`server`] — the TCP front end over that protocol: a
//!   [`server::Server`] whose readiness-polled event loops multiplex
//!   thousands of (mostly idle) connections with request pipelining,
//!   over a bounded worker pool with backpressure, connection caps,
//!   and graceful drain; plus the [`server::Client`], lockstep or
//!   pipelined.
//! * [`metrics`] — the paper's Average Precision protocol and summary
//!   statistics.
//!
//! ## Quickstart
//!
//! Embedded, single-session use drives a [`core::Session`] directly
//! (Listing 1 of the paper):
//!
//! ```
//! use seesaw::prelude::*;
//!
//! // A small BDD-like dataset (street scenes, rare small objects).
//! let dataset = DatasetSpec::bdd_like(0.001).generate(7);
//! // Preprocessing returns Arc<DatasetIndex>: immutable, shareable.
//! let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
//!
//! // Interactive loop: text query, then box feedback (Listing 1).
//! let mut session = Session::start(
//!     &index,
//!     &dataset,
//!     dataset.queries()[0].concept,
//!     MethodConfig::seesaw(),
//! );
//! let user = SimulatedUser::new(&dataset);
//! for _ in 0..5 {
//!     let batch = session.next_batch(2);
//!     for image in batch {
//!         let feedback = user.annotate(image, session.concept());
//!         session.feedback(feedback);
//!     }
//! }
//! ```
//!
//! Serving many users goes through an [`core::SearchService`] — owned
//! (`Arc`-shareable, `Send + Sync + 'static`), locking per session, and
//! speaking a serializable request/response protocol so it can sit
//! behind any transport:
//!
//! ```
//! use seesaw::prelude::*;
//! use std::sync::Arc;
//!
//! let dataset = Arc::new(DatasetSpec::coco_like(0.001).generate(42));
//! let index = Preprocessor::new(PreprocessConfig::fast()).build(&dataset);
//! let service = Arc::new(SearchService::new(index, Arc::clone(&dataset)));
//!
//! // Typed API: every failure is a ServiceError, and exhaustion is a
//! // Batch variant — not an empty vector or a None.
//! let concept = dataset.queries()[0].concept;
//! let id = service.create_session(concept, MethodConfig::seesaw())?;
//! let user = SimulatedUser::new(&dataset);
//! if let Batch::Images(images) = service.next_batch(id, 2)? {
//!     for image in images {
//!         service.feedback(id, user.annotate(image, concept))?;
//!     }
//! }
//! assert_eq!(service.stats(id)?.images_shown, 2);
//!
//! // Wire protocol: one JSON line per message, no external deps.
//! let reply = service.handle_line(&Request::Stats { session: id.raw() }.encode());
//! assert!(matches!(Response::decode(&reply)?, Response::Stats { images_shown: 2, .. }));
//! service.close(id)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use seesaw_aligner as aligner;
pub use seesaw_baselines as baselines;
pub use seesaw_core as core;
pub use seesaw_dataset as dataset;
pub use seesaw_embed as embed;
pub use seesaw_knn as knn;
pub use seesaw_linalg as linalg;
pub use seesaw_metrics as metrics;
pub use seesaw_optim as optim;
pub use seesaw_server as server;
pub use seesaw_vecstore as vecstore;

/// Everything a typical caller needs, in one import.
pub mod prelude {
    pub use seesaw_aligner::{AlignerConfig, QueryAligner};
    pub use seesaw_baselines::{EnsConfig, RocchioConfig};
    pub use seesaw_core::{
        Batch, Feedback, Method, MethodConfig, MethodSpec, PreprocessConfig, Preprocessor, Request,
        Response, SearchService, ServiceError, Session, SessionId, SessionStats, SimulatedUser,
    };
    pub use seesaw_dataset::{DatasetSpec, SyntheticDataset};
    pub use seesaw_embed::EmbeddingModel;
    pub use seesaw_metrics::{average_precision, BenchmarkProtocol};
    pub use seesaw_server::{Client, ClientError, Server, ServerConfig, ServerStats};
    pub use seesaw_vecstore::{StoreConfig, VectorStore};
}
